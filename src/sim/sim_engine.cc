#include "sim/sim_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "circuit/constants.h"
#include "fault/fault_injector.h"
#include "util/logging.h"
#include "workload/catalog.h"

namespace atmsim::sim {

using util::Amps;
using util::Celsius;
using util::Nanoseconds;
using util::Picoseconds;
using util::Seconds;
using util::Volts;
using util::Watts;

SimEngine::SimEngine(chip::Chip *target, const SimConfig &config)
    : chip_(target), config_(config)
{
    if (!target)
        util::panic("SimEngine constructed with null chip");
    if (config_.dtNs <= 0.0 || config_.dtNs > 1.0)
        util::fatal("engine time step ", config_.dtNs,
                    " ns outside (0, 1]");
}

double
SimEngine::eventCurrentFor(const variation::CoreSiliconParams &core,
                           const workload::WorkloadTraits &traits,
                           int synchronized_cores) const
{
    // Size the current pulse so the core-local excursion equals the
    // workload's characteristic droop: shared-grid droop (superposed
    // across any synchronized co-pulsing cores) plus local-branch IR.
    // Per-core vulnerability is applied on the receiving side, in
    // AtmCore::timingMet().
    (void)core;
    const double droop_v = traits.droopMv * 1e-3;
    const double gain_v_per_a =
        chip_->pdn().stepDroopV(Amps{1.0}).value()
            * std::max(synchronized_cores, 1)
        + chip_->config().pdnParams.coreLocalResOhm;
    // A periodic synchronized wave partially rides the PDN resonance;
    // derate its swing so the built-up excursion matches the
    // characteristic droop (the 1-in-128 issue throttle also never
    // fully idles the pipeline).
    const double swing = synchronized_cores > 1 ? 0.9 : 1.0;
    return droop_v * swing / gain_v_per_a;
}

RunResult
SimEngine::run(double duration_us)
{
    chip::Chip &chip = *chip_;
    const int n = chip.coreCount();
    util::Rng rng(config_.seed);

    // --- Per-core setup from the current assignments.
    std::vector<workload::ActivityGenerator> activity;
    std::vector<Picoseconds> exposure_ps(static_cast<std::size_t>(n),
                                         Picoseconds{0.0});
    std::vector<double> activity_w(static_cast<std::size_t>(n), 0.0);
    activity.reserve(static_cast<std::size_t>(n));
    int synchronized_cores = 0;
    for (int c = 0; c < n; ++c) {
        const chip::CoreAssignment &slot = chip.assignment(c);
        if (!slot.idle()
            && slot.traits->stress == workload::StressClass::Virus) {
            ++synchronized_cores;
        }
    }
    for (int c = 0; c < n; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const chip::CoreAssignment &slot = chip.assignment(c);
        const workload::WorkloadTraits &traits =
            slot.idle() ? workload::idleWorkload() : *slot.traits;
        const variation::CoreSiliconParams &silicon =
            chip.core(c).silicon();
        exposure_ps[ci] = chip::Chip::pathExposurePs(silicon, traits);
        activity_w[ci] = slot.idle()
                       ? 0.0
                       : traits.coreActivityW(slot.threads);
        const int sync =
            traits.stress == workload::StressClass::Virus
                ? synchronized_cores
                : 1;
        activity.emplace_back(&traits,
                              eventCurrentFor(silicon, traits, sync),
                              rng.fork(static_cast<std::uint64_t>(c) + 7));
    }

    // --- Settle the DC operating point and start the clocks there.
    const chip::ChipSteadyState steady = chip.solveSteadyState();
    std::vector<Watts> core_power = steady.corePowerW;
    std::vector<Amps> core_current(static_cast<std::size_t>(n),
                                   Amps{0.0});
    Amps uncore_current{0.0};
    {
        std::vector<Amps> dc(static_cast<std::size_t>(n), Amps{0.0});
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            dc[ci] = power::PowerModel::currentA(core_power[ci],
                                                 steady.gridVoltageV);
        }
        uncore_current = power::PowerModel::currentA(
            chip.powerModel().uncoreW(steady.gridVoltageV),
            steady.gridVoltageV);
        chip.pdn().settle(dc, uncore_current);
        chip.thermal().settle(core_power,
                              chip.powerModel().uncoreW(
                                  steady.gridVoltageV));
        core_current = dc;
    }
    for (int c = 0; c < n; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        chip.core(c).resetClock(steady.coreVoltageV[ci],
                                steady.coreTempC[ci]);
    }

    // --- Fault campaign arming.
    fault::FaultInjector injector(chip_);
    if (campaign_) {
        campaign_->validate(n);
        campaign_->reset();
    }
    std::vector<std::size_t> fault_edges;

    // --- Main loop.
    RunResult result;
    result.coreStats.resize(static_cast<std::size_t>(n));
    const double duration_ns = duration_us * 1e3;
    const long total_steps =
        static_cast<long>(std::ceil(duration_ns / config_.dtNs));
    const double dt_s = config_.dtNs * 1e-9;
    std::vector<Amps> instant_current(static_cast<std::size_t>(n),
                                      Amps{0.0});
    std::vector<char> in_violation(static_cast<std::size_t>(n), 0);
    util::Rng fail_rng = rng.fork(0xfa11);

    long step = 0;
    for (; step < total_steps; ++step) {
        const double now_ns = static_cast<double>(step) * config_.dtNs;

        // Fire and expire armed faults.
        if (campaign_ && !campaign_->allDone()) {
            fault_edges.clear();
            campaign_->collectActivations(now_ns, fault_edges);
            for (std::size_t f : fault_edges)
                injector.apply(campaign_->spec(f));
            fault_edges.clear();
            campaign_->collectExpirations(now_ns, fault_edges);
            for (std::size_t f : fault_edges)
                injector.revert(campaign_->spec(f));
        }

        // Slow cadence: refresh DC power draw and temperatures.
        if (step % config_.slowCadence == 0) {
            const Volts grid_v = chip.pdn().gridV();
            const Watts uncore_w = chip.powerModel().uncoreW(grid_v);
            const Volts grid_floor = std::max(grid_v, Volts{0.6});
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                Watts p;
                if (chip.core(c).mode() == chip::CoreMode::Gated) {
                    p = Watts{0.25};
                } else {
                    const chip::CoreAssignment &slot =
                        chip.assignment(c);
                    const double phase_scale =
                        slot.idle() ? 1.0
                                    : slot.traits->phaseActivityScale(
                                          now_ns * 1e-3);
                    p = chip.powerModel().coreTotalW(
                        Watts{activity_w[ci] * phase_scale},
                        chip.core(c).frequencyMhz(),
                        std::max(chip.pdn().coreV(c), Volts{0.6}),
                        chip.thermal().coreTempC(c));
                }
                core_power[ci] = p;
                core_current[ci] =
                    power::PowerModel::currentA(p, grid_floor);
            }
            uncore_current = power::PowerModel::currentA(
                uncore_w, grid_floor);
            chip.thermal().step(Seconds{dt_s * config_.slowCadence},
                                core_power, uncore_w);
        }

        // Electrical step: DC draw plus transient di/dt events
        // (power-gated cores inject nothing).
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            const double transient =
                chip.core(c).mode() == chip::CoreMode::Gated
                    ? 0.0
                    : activity[ci].transientCurrentA(now_ns);
            instant_current[ci] = core_current[ci] + Amps{transient};
            if (injector.stormActive())
                instant_current[ci] +=
                    Amps{injector.stormCurrentA(c, now_ns)};
        }
        chip.pdn().step(Seconds{dt_s}, instant_current, uncore_current);

        // Control loops and the timing race. A violation is counted
        // once per episode: contiguous violating steps are one event,
        // and the episode ends when the core meets timing again, so a
        // run past its first violation keeps accumulating per-core
        // counts without storing one event per 0.2 ns step.
        bool violated = false;
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            const Volts v = chip.pdn().coreV(c);
            const Celsius t_c = chip.thermal().coreTempC(c);
            chip.core(c).stepControl(Nanoseconds{now_ns}, v, t_c);
            if (!chip.core(c).timingMet(v, t_c, exposure_ps[ci],
                                        Picoseconds{config_.runNoisePs}))
            {
                if (in_violation[ci])
                    continue;
                in_violation[ci] = 1;
                ViolationEvent ev;
                ev.timeNs = now_ns;
                ev.core = c;
                ev.deficitPs =
                    chip.core(c)
                        .timingDeficitPs(v, t_c, exposure_ps[ci],
                                         Picoseconds{config_.runNoisePs})
                        .value();
                const double u = fail_rng.uniform();
                ev.kind = u < 0.3 ? FailureKind::SystemCrash
                        : u < 0.8 ? FailureKind::AbnormalExit
                                  : FailureKind::SilentDataCorruption;
                if (observer_)
                    ev.detected = observer_->onViolation(ev);
                if (ev.detected) {
                    ++result.safety.detectedViolations;
                } else if (ev.kind
                           == FailureKind::SilentDataCorruption) {
                    ++result.safety.silentFailures;
                }
                if (result.violations.size() < kMaxStoredViolations)
                    result.violations.push_back(ev);
                else
                    ++result.safety.droppedViolationEvents;
                ++result.coreStats[ci].violations;
                violated = true;
            } else {
                in_violation[ci] = 0;
            }
        }
        if (violated && config_.stopOnViolation) {
            result.stoppedEarly = true;
            ++step;
            break;
        }

        // Statistics cadence.
        if (step % config_.statsCadence == 0) {
            double chip_power =
                chip.powerModel().uncoreW(chip.pdn().gridV()).value();
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                const double v = chip.pdn().coreV(c).value();
                const double f = chip.core(c).frequencyMhz().value();
                auto &cs = result.coreStats[ci];
                if (chip.core(c).mode() != chip::CoreMode::Gated) {
                    cs.freqMhz.add(f);
                    cs.voltageV.add(v);
                    cs.minVoltageV = cs.voltageV.count() == 1
                                   ? v
                                   : std::min(cs.minVoltageV, v);
                }
                chip_power += core_power[ci].value();
                if (probe_)
                    probe_(now_ns, c, f, v);
            }
            result.chipPowerW.add(chip_power);
            result.maxCoreTempC =
                std::max(result.maxCoreTempC,
                         chip.thermal().maxCoreTempC().value());
            if (observer_)
                observer_->onSample(now_ns);
        }
    }

    for (int c = 0; c < n; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        result.coreStats[ci].emergencies = chip.core(c).emergencyCount();
        result.safety.emergencies += result.coreStats[ci].emergencies;
    }
    result.minGridV = chip.pdn().minGridV().value();
    result.durationNs = static_cast<double>(step) * config_.dtNs;
    if (observer_)
        observer_->finish(result.durationNs, result.safety);

    // Leave no fault state behind: anything still active at the end of
    // the run window is reverted so the chip can be reused.
    if (campaign_) {
        fault_edges.clear();
        campaign_->collectExpirations(
            std::numeric_limits<double>::infinity(), fault_edges);
        for (std::size_t f : fault_edges)
            injector.revert(campaign_->spec(f));
    }
    return result;
}

} // namespace atmsim::sim
