#include "sim/sim_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "circuit/constants.h"
#include "fault/fault_injector.h"
#include "util/logging.h"
#include "workload/catalog.h"

namespace atmsim::sim {

using util::Amps;
using util::Celsius;
using util::Nanoseconds;
using util::Picoseconds;
using util::Seconds;
using util::Volts;
using util::Watts;

namespace {

/** Engine phase ids (indices into kPhaseNames). */
enum EnginePhase : std::size_t {
    kPhaseSettle = 0,
    kPhaseFaults,
    kPhaseThermal,
    kPhasePdn,
    kPhaseAtm,
    kPhaseViolation,
    kPhaseStats,
    kPhaseCount,
};

const char *const kPhaseNames[kPhaseCount] = {
    "engine.settle",    "engine.faults",          "engine.thermal_cadence",
    "engine.pdn_advance", "engine.atm_loop",
    "engine.violation_check", "engine.stats_sample",
};

/**
 * A core counts as drooping while its rail sits this far below its
 * DC operating point. The paper's Sec. III-B droop races live in the
 * tens-of-mV band; 30 mV marks the excursions big enough to matter
 * without flooding the flight recorder with supply ripple. The
 * sampled-mode quiet gate reuses the same threshold: a rail that
 * would not even register as a droop excursion is steady enough to
 * fast-forward over.
 */
constexpr double kFlightDroopThresholdV = 0.03;

/**
 * Times at or beyond this are treated as "never" when converting to a
 * step index (fault campaigns and activity generators report
 * +infinity / 1e30 sentinels when nothing is scheduled).
 */
constexpr double kUnboundedTimeNs = 1e17;

/** Metric instruments the engine updates, resolved once per run. */
struct EngineMetrics
{
    obs::Counter *runs = nullptr;
    obs::Counter *steps = nullptr;
    obs::Counter *samples = nullptr;
    obs::Counter *violations = nullptr;
    obs::Counter *detected = nullptr;
    obs::Counter *silent = nullptr;
    obs::Counter *emergencies = nullptr;
    obs::Counter *stoppedEarly = nullptr;
    obs::Counter *gridClamped = nullptr;
    obs::Counter *faultsActivated = nullptr;
    obs::Counter *faultsReverted = nullptr;
    obs::Counter *slewUps = nullptr;
    obs::Counter *slewDowns = nullptr;
    obs::Histogram *voltage = nullptr;
    obs::Histogram *freq = nullptr;
    obs::Histogram *deficit = nullptr;
    obs::Histogram *cpmWorst = nullptr;

    // Instrument resolution runs once per run(), before the step
    // loop starts; its lookups and allocations are off the hot path.
    // atmlint: contract(cold)
    explicit EngineMetrics(obs::MetricsRegistry *reg)
    {
        if (!reg)
            return;
        runs = &reg->counter("engine.runs");
        steps = &reg->counter("engine.steps");
        samples = &reg->counter("engine.samples");
        violations = &reg->counter("engine.violations.total");
        detected = &reg->counter("engine.violations.detected");
        silent = &reg->counter("engine.violations.silent");
        emergencies = &reg->counter("engine.emergencies");
        stoppedEarly = &reg->counter("engine.stopped_early");
        gridClamped = &reg->counter("engine.grid.clamped_cadences");
        faultsActivated = &reg->counter("engine.faults.activated");
        faultsReverted = &reg->counter("engine.faults.reverted");
        slewUps = &reg->counter("engine.dpll.slew_up");
        slewDowns = &reg->counter("engine.dpll.slew_down");
        voltage = &reg->histogram(
            "engine.core.voltage_v",
            obs::Histogram::linear(0.5, 1.3, 32));
        freq = &reg->histogram(
            "engine.core.freq_mhz",
            obs::Histogram::linear(1000.0, 5000.0, 40));
        deficit = &reg->histogram(
            "engine.violation.deficit_ps",
            obs::Histogram::linear(0.0, 100.0, 25));
        cpmWorst = &reg->histogram(
            "engine.cpm.worst_count",
            obs::Histogram::linear(0.0, 32.0, 32));
    }
};

/**
 * Chunked phase spans: instead of one trace event per step (which
 * would swamp the buffer at a 0.2 ns dt), the run flushes one
 * complete event per phase per flush point, spanning the wall time
 * that phase accumulated since the previous flush. Each phase gets
 * its own track, so Perfetto renders the chunks as parallel
 * swimlanes under the engine process.
 */
class PhaseSpanFlusher
{
  public:
    // Track resolution happens once, outside the step loop.
    // atmlint: contract(cold)
    PhaseSpanFlusher(obs::TraceCollector *trace,
                     const obs::PhaseProfiler &profiler)
        : trace_(trace), profiler_(profiler)
    {
        if (!trace_)
            return;
        for (std::size_t p = 0; p < kPhaseCount; ++p)
            tracks_[p] = trace_->track(kPhaseNames[p]);
    }

    void
    flush(double sim_ns)
    {
        if (!trace_)
            return;
        const double now_us = trace_->nowUs();
        for (std::size_t p = 0; p < kPhaseCount; ++p) {
            const double delta_ns =
                profiler_.wallNsSince(p, lastWallNs_[p]);
            if (delta_ns <= 0.0)
                continue;
            lastWallNs_[p] += delta_ns;
            const double dur_us = delta_ns * 1e-3;
            trace_->complete(kPhaseNames[p], tracks_[p],
                             now_us - dur_us, dur_us, sim_ns);
        }
    }

  private:
    obs::TraceCollector *trace_;
    const obs::PhaseProfiler &profiler_;
    int tracks_[kPhaseCount] = {};
    double lastWallNs_[kPhaseCount] = {};
};

// Profiler construction allocates its name table; carved out of the
// contracted run bodies (guaranteed copy elision hands the instance
// straight to the caller's local).
// atmlint: contract(cold)
obs::PhaseProfiler
makeEngineProfiler(bool wants_wall_clock)
{
    return obs::PhaseProfiler(
        std::vector<const char *>(kPhaseNames, kPhaseNames + kPhaseCount),
        wants_wall_clock);
}

/**
 * First step index whose simulation time is at or past `timeNs`.
 * Sentinel times (+inf, the generators' 1e30 "nothing scheduled")
 * map to a huge-but-overflow-safe index instead of tripping the
 * undefined double->long cast.
 */
ATM_HOT_PATH(engine_step)
[[nodiscard]] long
stepAtOrAfter(double timeNs, double dtNs) noexcept
{
    if (!(timeNs < kUnboundedTimeNs))
        return std::numeric_limits<long>::max() / 2;
    return static_cast<long>(std::ceil(timeNs / dtNs));
}

} // namespace

const char *
engineModeName(EngineMode mode)
{
    switch (mode) {
      case EngineMode::Legacy:
        return "legacy";
      case EngineMode::Soa:
        return "soa";
      case EngineMode::Sampled:
        return "sampled";
    }
    return "unknown";
}

bool
engineModeFromName(std::string_view name, EngineMode &out)
{
    if (name == "legacy") {
        out = EngineMode::Legacy;
        return true;
    }
    if (name == "soa") {
        out = EngineMode::Soa;
        return true;
    }
    if (name == "sampled") {
        out = EngineMode::Sampled;
        return true;
    }
    return false;
}

SimEngine::SimEngine(chip::Chip *target, const SimConfig &config)
    : chip_(target), config_(config)
{
    if (!target)
        util::panic("SimEngine constructed with null chip");
    if (config_.dtNs <= 0.0 || config_.dtNs > 1.0)
        util::fatal("engine time step ", config_.dtNs,
                    " ns outside (0, 1]");
}

double
SimEngine::eventCurrentFor(const variation::CoreSiliconParams &core,
                           const workload::WorkloadTraits &traits,
                           int synchronized_cores) const
{
    // Size the current pulse so the core-local excursion equals the
    // workload's characteristic droop: shared-grid droop (superposed
    // across any synchronized co-pulsing cores) plus local-branch IR.
    // Per-core vulnerability is applied on the receiving side, in
    // AtmCore::timingMet().
    (void)core;
    const double droop_v = traits.droopMv * 1e-3;
    const double gain_v_per_a =
        chip_->pdn().stepDroopV(Amps{1.0}).value()
            * std::max(synchronized_cores, 1)
        + chip_->config().pdnParams.coreLocalResOhm;
    // A periodic synchronized wave partially rides the PDN resonance;
    // derate its swing so the built-up excursion matches the
    // characteristic droop (the 1-in-128 issue throttle also never
    // fully idles the pipeline).
    const double swing = synchronized_cores > 1 ? 0.9 : 1.0;
    return droop_v * swing / gain_v_per_a;
}

/**
 * Per-run scratch shared by the step-loop variants: everything the
 * pre-refactor run() kept as locals, sized once in prepareRun() so
 * the hot loops never allocate.
 */
struct SimEngine::RunScratch
{
    std::vector<workload::ActivityGenerator> activity;
    std::vector<Picoseconds> exposurePs;
    std::vector<double> activityW;
    chip::ChipSteadyState steady;
    std::vector<Watts> corePower;
    std::vector<Amps> coreCurrent;
    std::vector<Amps> instantCurrent;
    Amps uncoreCurrent{0.0};
    std::vector<char> inViolation;
    std::vector<char> inDroop;
    std::vector<CoreSample> frame;
    std::vector<std::size_t> faultEdges;
    util::Rng failRng{0};
    Seconds dtStep{0.0};
    Seconds dtSlow{0.0};
    Picoseconds runNoise{0.0};
    long totalSteps = 0;

    /** Next fault activation or expiration; +inf when the campaign is
     *  exhausted (or absent). The step loop skips the campaign scan
     *  entirely until simulation time reaches this. */
    double nextFaultEdgeNs = std::numeric_limits<double>::infinity();

    // Indexed violation store (the capacity is a true bound, so the
    // hot path writes by index instead of push_back).
    std::size_t violationCap = 0;
    std::size_t violationCount = 0;

    // Sampled-mode steady-state trackers.
    long prevDpllAdjustments = 0;
    double prevPkgC = 0.0;
    bool thermalQuiet = true;
};

/** Loop-invariant references threaded through the sampled-mode
 *  fast-forward (all owned by runSoa's frame). */
struct SimEngine::SoaCtx
{
    chip::Chip &chip;
    EngineSoaState &soa;
    RunScratch &scratch;
    RunResult &result;
    EngineMetrics &met;
    obs::PhaseProfiler &profiler;
    PhaseSpanFlusher &spans;
    obs::FlightRecorder *flight;
    util::WarnThrottle &gridWarn;
};

// Per-run setup: activity generators, DC settle, clock resets,
// campaign arming, result sizing, observer onRunStart. Runs once
// before the step loop; its allocations are off the hot path.
// atmlint: contract(cold)
void
SimEngine::prepareRun(RunScratch &scratch, RunResult &result,
                      double duration_us)
{
    chip::Chip &chip = *chip_;
    const int n = chip.coreCount();
    util::Rng rng(config_.seed);

    // --- Per-core setup from the current assignments.
    scratch.exposurePs.assign(static_cast<std::size_t>(n),
                              Picoseconds{0.0});
    scratch.activityW.assign(static_cast<std::size_t>(n), 0.0);
    scratch.activity.clear();
    scratch.activity.reserve(static_cast<std::size_t>(n));
    int synchronized_cores = 0;
    for (int c = 0; c < n; ++c) {
        const chip::CoreAssignment &slot = chip.assignment(c);
        if (!slot.idle()
            && slot.traits->stress == workload::StressClass::Virus) {
            ++synchronized_cores;
        }
    }
    for (int c = 0; c < n; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const chip::CoreAssignment &slot = chip.assignment(c);
        const workload::WorkloadTraits &traits =
            slot.idle() ? workload::idleWorkload() : *slot.traits;
        const variation::CoreSiliconParams &silicon =
            chip.core(c).silicon();
        scratch.exposurePs[ci] = chip::Chip::pathExposurePs(silicon,
                                                            traits);
        scratch.activityW[ci] = slot.idle()
                              ? 0.0
                              : traits.coreActivityW(slot.threads);
        const int sync =
            traits.stress == workload::StressClass::Virus
                ? synchronized_cores
                : 1;
        scratch.activity.emplace_back(
            &traits, eventCurrentFor(silicon, traits, sync),
            rng.fork(static_cast<std::uint64_t>(c) + 7));
    }

    // --- Settle the DC operating point and start the clocks there.
    scratch.steady = chip.solveSteadyState();
    scratch.corePower = scratch.steady.corePowerW;
    scratch.coreCurrent.assign(static_cast<std::size_t>(n), Amps{0.0});
    {
        std::vector<Amps> dc(static_cast<std::size_t>(n), Amps{0.0});
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            dc[ci] = power::PowerModel::currentA(
                scratch.corePower[ci], scratch.steady.gridVoltageV);
        }
        scratch.uncoreCurrent = power::PowerModel::currentA(
            chip.powerModel().uncoreW(scratch.steady.gridVoltageV),
            scratch.steady.gridVoltageV);
        chip.pdn().settle(dc, scratch.uncoreCurrent);
        chip.thermal().settle(scratch.corePower,
                              chip.powerModel().uncoreW(
                                  scratch.steady.gridVoltageV));
        scratch.coreCurrent = dc;
    }
    for (int c = 0; c < n; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        chip.core(c).resetClock(scratch.steady.coreVoltageV[ci],
                                scratch.steady.coreTempC[ci]);
    }

    // --- Fault campaign arming. Scratch for edge collection is sized
    // once so the step loop never grows it (a campaign can fire at
    // most every spec at one edge).
    if (campaign_) {
        campaign_->validate(n);
        campaign_->reset();
        scratch.faultEdges.reserve(campaign_->size());
        scratch.nextFaultEdgeNs = campaign_->nextEdgeNs();
    }

    // --- Result sizing and loop constants.
    result.coreStats.resize(static_cast<std::size_t>(n));
    const double duration_ns = duration_us * 1e3;
    scratch.totalSteps =
        static_cast<long>(std::ceil(duration_ns / config_.dtNs));
    const double dt_s = config_.dtNs * 1e-9;
    // Hoisted per-step constants: these were rebuilt every iteration
    // (and run_noise twice per core) inside the 0.2 ns loop.
    scratch.dtStep = Seconds{dt_s};
    scratch.dtSlow = Seconds{dt_s * config_.slowCadence};
    scratch.runNoise = Picoseconds{config_.runNoisePs};
    scratch.instantCurrent.assign(static_cast<std::size_t>(n),
                                  Amps{0.0});
    scratch.inViolation.assign(static_cast<std::size_t>(n), 0);
    scratch.inDroop.assign(static_cast<std::size_t>(n), 0);
    scratch.frame.resize(static_cast<std::size_t>(n));
    scratch.failRng = rng.fork(0xfa11);

    // Violation episodes are rare, but growing the store inside the
    // loop is avoidable: a stop-on-violation run holds at most one
    // episode per core (the step that fires them is the last), and a
    // ride-through run stores at most the cap. Pre-sizing to the true
    // bound lets the loop write by index.
    scratch.violationCap = config_.stopOnViolation
                               ? static_cast<std::size_t>(n)
                               : kMaxStoredViolations;
    scratch.violationCount = 0;
    result.violations.resize(scratch.violationCap);

    // Tell per-sample recorders how much to expect (stats samples at
    // step 0, statsCadence, 2*statsCadence, ...).
    const std::size_t expected_samples =
        scratch.totalSteps <= 0
            ? 0
            : static_cast<std::size_t>(
                  (scratch.totalSteps - 1) / config_.statsCadence + 1);
    for (EngineObserver *o : observers_)
        o->onRunStart(expected_samples);
}

// The observer fan-outs are the only virtual dispatch reachable from
// the step loop; isolating them gives the hot-path baseline a stable
// symbol to pin (and the optimizer a single outlined cold-ish call).
// atmlint: contract(engine_step)
void
SimEngine::dispatchViolation(ViolationEvent &event)
{
    for (EngineObserver *o : observers_) {
        if (o->onViolation(event))
            event.detected = true;
    }
}

// atmlint: contract(engine_step)
void
SimEngine::dispatchSample(util::Nanoseconds now,
                          const std::vector<CoreSample> &frame)
{
    for (EngineObserver *o : observers_)
        o->onSample(now, frame);
}

// Observer finish fan-out + violation-store trim; runs once after
// the step loop.
// atmlint: contract(cold)
void
SimEngine::finishRun(RunScratch &scratch, RunResult &result)
{
    result.violations.resize(
        std::min(scratch.violationCount, scratch.violationCap));
    for (EngineObserver *o : observers_)
        o->finish(Nanoseconds{result.durationNs}, result.safety);
}

RunResult
SimEngine::run(double duration_us)
{
    if (config_.mode == EngineMode::Legacy)
        return runLegacy(duration_us);
    return runSoa(duration_us);
}

// The step loop sits under the engine_step hot-path contract: at a
// 0.2 ns dt a millisecond of sim time is five million iterations, so
// nothing reachable from here may allocate, lock, stream, or read a
// wall clock (per-run setup that must do those things is carved out
// with contract(cold) markers on the helpers above).
// atmlint: contract(engine_step)
RunResult
SimEngine::runLegacy(double duration_us)
{
    chip::Chip &chip = *chip_;
    const int n = chip.coreCount();
    const double run_start_wall_ns = obs::monotonicWallNs();

    // --- Observability wiring (all optional). The profiler charges
    // two clock reads per phase, so it keys off the backends that
    // consume wall time -- a flight-recorder-only attachment stays on
    // the sim-time-only fast path.
    obs::PhaseProfiler profiler =
        makeEngineProfiler(obs_.wantsWallClock());
    EngineMetrics met(obs_.metrics);
    obs::FlightRecorder *const flight = obs_.flight;
    PhaseSpanFlusher spans(obs_.trace, profiler);
    int trk_violations = 0;
    int trk_faults = 0;
    if (obs_.trace) {
        trk_violations = obs_.trace->track("engine.violations");
        trk_faults = obs_.trace->track("engine.fault_edges");
    }
    if (met.runs)
        met.runs->inc();
    util::WarnThrottle grid_warn("engine.grid");

    RunScratch scratch;
    RunResult result;
    double t0 = profiler.begin();
    prepareRun(scratch, result, duration_us);
    profiler.end(kPhaseSettle, t0);

    fault::FaultInjector injector(chip_);

    long step = 0;
    for (; step < scratch.totalSteps; ++step) {
        const double now_ns = static_cast<double>(step) * config_.dtNs;

        // Fire and expire armed faults. The scan is skipped entirely
        // until simulation time reaches the next known edge -- a
        // campaign's effects happen only at edges, so the gate is
        // behavior-preserving.
        if (campaign_ && now_ns >= scratch.nextFaultEdgeNs) {
            t0 = profiler.begin();
            scratch.faultEdges.clear();
            campaign_->collectActivations(now_ns, scratch.faultEdges);
            for (std::size_t f : scratch.faultEdges) {
                injector.apply(campaign_->spec(f));
                if (met.faultsActivated)
                    met.faultsActivated->inc();
                if (obs_.trace) {
                    obs_.trace->instant("fault.activate", trk_faults,
                                        now_ns,
                                        static_cast<long>(f));
                }
                if (flight && campaign_->spec(f).core >= 0) {
                    flight->record(campaign_->spec(f).core,
                                   obs::FlightEventKind::FaultInject,
                                   now_ns, static_cast<double>(f));
                }
            }
            scratch.faultEdges.clear();
            campaign_->collectExpirations(now_ns, scratch.faultEdges);
            for (std::size_t f : scratch.faultEdges) {
                injector.revert(campaign_->spec(f));
                if (met.faultsReverted)
                    met.faultsReverted->inc();
                if (obs_.trace) {
                    obs_.trace->instant("fault.revert", trk_faults,
                                        now_ns,
                                        static_cast<long>(f));
                }
                if (flight && campaign_->spec(f).core >= 0) {
                    flight->record(campaign_->spec(f).core,
                                   obs::FlightEventKind::FaultRevert,
                                   now_ns, static_cast<double>(f));
                }
            }
            scratch.nextFaultEdgeNs = campaign_->nextEdgeNs();
            profiler.end(kPhaseFaults, t0);
        }

        // Slow cadence: refresh DC power draw and temperatures.
        if (step % config_.slowCadence == 0) {
            t0 = profiler.begin();
            const Volts grid_v = chip.pdn().gridV();
            const Watts uncore_w = chip.powerModel().uncoreW(grid_v);
            const Volts grid_floor = std::max(grid_v, Volts{0.6});
            if (grid_v < Volts{0.6}) {
                if (met.gridClamped)
                    met.gridClamped->inc();
                grid_warn.warn("grid voltage ", grid_v.value(),
                               " V clamped to 0.6 V at t=", now_ns,
                               " ns");
            }
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                Watts p;
                if (chip.core(c).mode() == chip::CoreMode::Gated) {
                    p = Watts{0.25};
                } else {
                    const chip::CoreAssignment &slot =
                        chip.assignment(c);
                    const double phase_scale =
                        slot.idle() ? 1.0
                                    : slot.traits->phaseActivityScale(
                                          now_ns * 1e-3);
                    p = chip.powerModel().coreTotalW(
                        Watts{scratch.activityW[ci] * phase_scale},
                        chip.core(c).frequencyMhz(),
                        std::max(chip.pdn().coreV(c), Volts{0.6}),
                        chip.thermal().coreTempC(c));
                }
                scratch.corePower[ci] = p;
                scratch.coreCurrent[ci] =
                    power::PowerModel::currentA(p, grid_floor);
            }
            scratch.uncoreCurrent = power::PowerModel::currentA(
                uncore_w, grid_floor);
            chip.thermal().step(scratch.dtSlow, scratch.corePower,
                                uncore_w);
            profiler.end(kPhaseThermal, t0);
            spans.flush(now_ns);
        }

        // Electrical step: DC draw plus transient di/dt events
        // (power-gated cores inject nothing).
        t0 = profiler.begin();
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            const double transient =
                chip.core(c).mode() == chip::CoreMode::Gated
                    ? 0.0
                    : scratch.activity[ci].transientCurrentA(now_ns);
            scratch.instantCurrent[ci] =
                scratch.coreCurrent[ci] + Amps{transient};
            if (injector.stormActive())
                scratch.instantCurrent[ci] +=
                    Amps{injector.stormCurrentA(c, now_ns)};
        }
        chip.pdn().step(scratch.dtStep, scratch.instantCurrent,
                        scratch.uncoreCurrent);
        profiler.end(kPhasePdn, t0);

        // Flight-recorder droop edges: one event per excursion below
        // the DC operating point, one on recovery. Edge-triggered so
        // a sustained droop costs two ring slots, not one per step.
        if (flight) {
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                const double v = chip.pdn().coreV(c).value();
                const double limit =
                    scratch.steady.coreVoltageV[ci].value()
                    - kFlightDroopThresholdV;
                if (v < limit) {
                    if (!scratch.inDroop[ci]) {
                        scratch.inDroop[ci] = 1;
                        flight->record(
                            c, obs::FlightEventKind::DroopEnter,
                            now_ns, v);
                    }
                } else if (scratch.inDroop[ci]) {
                    scratch.inDroop[ci] = 0;
                    flight->record(c, obs::FlightEventKind::DroopExit,
                                   now_ns, v);
                }
            }
        }

        // Per-core ATM control loops (cores are independent within a
        // step, so the control advance and the timing race can run as
        // separate passes and be profiled as distinct phases).
        t0 = profiler.begin();
        for (int c = 0; c < n; ++c) {
            chip.core(c).stepControl(Nanoseconds{now_ns},
                                     chip.pdn().coreV(c),
                                     chip.thermal().coreTempC(c));
        }
        profiler.end(kPhaseAtm, t0);

        // The timing race. A violation is counted once per episode:
        // contiguous violating steps are one event, and the episode
        // ends when the core meets timing again, so a run past its
        // first violation keeps accumulating per-core counts without
        // storing one event per 0.2 ns step. The deficit is evaluated
        // once and reused for the event record (it used to be raced
        // twice: once for the met/missed verdict and once for the
        // event's deficit field).
        t0 = profiler.begin();
        bool violated = false;
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            double deficit = 0.0;
            if (chip.core(c).mode() != chip::CoreMode::Gated) {
                const Volts v = chip.pdn().coreV(c);
                const Celsius t_c = chip.thermal().coreTempC(c);
                deficit = chip.core(c)
                              .timingDeficitPs(v, t_c,
                                               scratch.exposurePs[ci],
                                               scratch.runNoise)
                              .value();
            }
            if (deficit <= 0.0) {
                // Gated cores always meet timing; an episode in
                // progress ends here either way.
                scratch.inViolation[ci] = 0;
                continue;
            }
            if (scratch.inViolation[ci])
                continue;
            scratch.inViolation[ci] = 1;
            ViolationEvent ev;
            ev.timeNs = now_ns;
            ev.core = c;
            ev.deficitPs = deficit;
            const double u = scratch.failRng.uniform();
            ev.kind = u < 0.3 ? FailureKind::SystemCrash
                    : u < 0.8 ? FailureKind::AbnormalExit
                              : FailureKind::SilentDataCorruption;
            dispatchViolation(ev);
            if (ev.detected) {
                ++result.safety.detectedViolations;
            } else if (ev.kind
                       == FailureKind::SilentDataCorruption) {
                ++result.safety.silentFailures;
            }
            if (met.violations) {
                met.violations->inc();
                if (ev.detected)
                    met.detected->inc();
                else if (ev.kind
                         == FailureKind::SilentDataCorruption)
                    met.silent->inc();
                met.deficit->record(ev.deficitPs);
            }
            if (obs_.trace) {
                obs_.trace->instant("violation", trk_violations,
                                    now_ns, c);
            }
            if (flight) {
                flight->record(c, obs::FlightEventKind::Violation,
                               now_ns, ev.deficitPs);
                // A timing violation is exactly what the black
                // box exists for: latch the dump request so the
                // session flushes the ring even on a clean exit.
                flight->requestDump();
            }
            if (scratch.violationCount < scratch.violationCap)
                result.violations[scratch.violationCount] = ev;
            else
                ++result.safety.droppedViolationEvents;
            ++scratch.violationCount;
            ++result.coreStats[ci].violations;
            violated = true;
        }
        profiler.end(kPhaseViolation, t0);
        if (violated && config_.stopOnViolation) {
            result.stoppedEarly = true;
            ++step;
            break;
        }

        // Statistics cadence: fold the frame into the run stats, the
        // metric histograms, and every attached observer.
        if (step % config_.statsCadence == 0) {
            t0 = profiler.begin();
            double chip_power =
                chip.powerModel().uncoreW(chip.pdn().gridV()).value();
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                const Volts v = chip.pdn().coreV(c);
                const util::Mhz f = chip.core(c).frequencyMhz();
                const bool gated =
                    chip.core(c).mode() == chip::CoreMode::Gated;
                scratch.frame[ci] = {f, v, gated};
                auto &cs = result.coreStats[ci];
                if (!gated) {
                    cs.freqMhz.add(f.value());
                    cs.voltageV.add(v.value());
                    cs.minVoltageV = cs.voltageV.count() == 1
                                   ? v.value()
                                   : std::min(cs.minVoltageV,
                                              v.value());
                    if (met.voltage || flight) {
                        const int worst =
                            chip.core(c).lastWorstCount();
                        if (met.voltage) {
                            met.voltage->record(v.value());
                            met.freq->record(f.value());
                            if (worst >= 0)
                                met.cpmWorst->record(worst);
                        }
                        if (flight) {
                            flight->record(
                                c, obs::FlightEventKind::Fmax,
                                now_ns, f.value());
                            if (worst >= 0)
                                flight->record(
                                    c, obs::FlightEventKind::Margin,
                                    now_ns, worst);
                        }
                    }
                }
                chip_power += scratch.corePower[ci].value();
            }
            result.chipPowerW.add(chip_power);
            result.maxCoreTempC =
                std::max(result.maxCoreTempC,
                         chip.thermal().maxCoreTempC().value());
            if (met.samples)
                met.samples->inc();
            dispatchSample(Nanoseconds{now_ns}, scratch.frame);
            profiler.end(kPhaseStats, t0);
        }
    }

    for (int c = 0; c < n; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        result.coreStats[ci].emergencies = chip.core(c).emergencyCount();
        result.safety.emergencies += result.coreStats[ci].emergencies;
    }
    result.minGridV = chip.pdn().minGridV().value();
    result.durationNs = static_cast<double>(step) * config_.dtNs;
    finishRun(scratch, result);

    // Leave no fault state behind: anything still active at the end of
    // the run window is reverted so the chip can be reused.
    if (campaign_) {
        scratch.faultEdges.clear();
        campaign_->collectExpirations(
            std::numeric_limits<double>::infinity(),
            scratch.faultEdges);
        for (std::size_t f : scratch.faultEdges)
            injector.revert(campaign_->spec(f));
    }

    // --- Run performance record + final observability flush.
    result.steps = step;
    result.wallSeconds =
        (obs::monotonicWallNs() - run_start_wall_ns) * 1e-9;
    if (profiler.enabled())
        result.phaseStats = profiler.snapshot();
    spans.flush(result.durationNs);
    if (met.steps) {
        met.steps->inc(step);
        met.emergencies->inc(result.safety.emergencies);
        if (result.stoppedEarly)
            met.stoppedEarly->inc();
        for (int c = 0; c < n; ++c) {
            met.slewUps->inc(chip.core(c).dpll().slewUpCount());
            met.slewDowns->inc(chip.core(c).dpll().slewDownCount());
        }
    }
    return result;
}

// The SoA step loop: the same physics as runLegacy(), iteration for
// iteration and operation for operation (the mode is gated on bitwise
// identity), but the four per-core inner loops index the contiguous
// arrays of EngineSoaState instead of chasing object-per-core
// pointers, and AtmCore::stepControl / the violation race run as
// branch-light kernels. Sampled mode rides the same loop and
// fast-forwards through detected steady state.
// atmlint: contract(engine_step)
RunResult
SimEngine::runSoa(double duration_us)
{
    chip::Chip &chip = *chip_;
    const int n = chip.coreCount();
    const double run_start_wall_ns = obs::monotonicWallNs();

    obs::PhaseProfiler profiler =
        makeEngineProfiler(obs_.wantsWallClock());
    EngineMetrics met(obs_.metrics);
    obs::FlightRecorder *const flight = obs_.flight;
    PhaseSpanFlusher spans(obs_.trace, profiler);
    int trk_violations = 0;
    int trk_faults = 0;
    if (obs_.trace) {
        trk_violations = obs_.trace->track("engine.violations");
        trk_faults = obs_.trace->track("engine.fault_edges");
    }
    if (met.runs)
        met.runs->inc();
    util::WarnThrottle grid_warn("engine.grid");

    RunScratch scratch;
    RunResult result;
    double t0 = profiler.begin();
    prepareRun(scratch, result, duration_us);
    profiler.end(kPhaseSettle, t0);

    fault::FaultInjector injector(chip_);

    EngineSoaState soa;
    soa.build(chip, scratch.exposurePs, scratch.steady.coreVoltageV,
              config_.runNoisePs);

    const bool sampled = config_.mode == EngineMode::Sampled;
    SteadyStateDetector detect(config_.steady);
    const bool have_observers = !observers_.empty();
    scratch.prevPkgC = chip.thermal().packageTempC().value();

    SoaCtx ctx{chip,     soa,   scratch, result, met,
               profiler, spans, flight,  grid_warn};

    long step = 0;
    for (; step < scratch.totalSteps; ++step) {
        const double now_ns = static_cast<double>(step) * config_.dtNs;

        // True when anything this step reconfigured the chip outside
        // the arrays (fault edge, observer action): kills the quiet
        // streak in sampled mode.
        bool config_edge = false;

        // Fire and expire armed faults (scan gated on the next known
        // edge, as in runLegacy). The injector works on the chip
        // objects, so dynamic state is stored back first and the full
        // state reloaded after.
        if (campaign_ && now_ns >= scratch.nextFaultEdgeNs) {
            t0 = profiler.begin();
            soa.storeDynamic(chip);
            scratch.faultEdges.clear();
            campaign_->collectActivations(now_ns, scratch.faultEdges);
            for (std::size_t f : scratch.faultEdges) {
                injector.apply(campaign_->spec(f));
                if (met.faultsActivated)
                    met.faultsActivated->inc();
                if (obs_.trace) {
                    obs_.trace->instant("fault.activate", trk_faults,
                                        now_ns,
                                        static_cast<long>(f));
                }
                if (flight && campaign_->spec(f).core >= 0) {
                    flight->record(campaign_->spec(f).core,
                                   obs::FlightEventKind::FaultInject,
                                   now_ns, static_cast<double>(f));
                }
            }
            scratch.faultEdges.clear();
            campaign_->collectExpirations(now_ns, scratch.faultEdges);
            for (std::size_t f : scratch.faultEdges) {
                injector.revert(campaign_->spec(f));
                if (met.faultsReverted)
                    met.faultsReverted->inc();
                if (obs_.trace) {
                    obs_.trace->instant("fault.revert", trk_faults,
                                        now_ns,
                                        static_cast<long>(f));
                }
                if (flight && campaign_->spec(f).core >= 0) {
                    flight->record(campaign_->spec(f).core,
                                   obs::FlightEventKind::FaultRevert,
                                   now_ns, static_cast<double>(f));
                }
            }
            scratch.nextFaultEdgeNs = campaign_->nextEdgeNs();
            soa.loadConfig(chip);
            soa.loadDynamic(chip);
            soa.refreshTemps(chip);
            config_edge = true;
            profiler.end(kPhaseFaults, t0);
        }

        // Slow cadence: refresh DC power draw and temperatures.
        if (step % config_.slowCadence == 0) {
            t0 = profiler.begin();
            const Volts grid_v = chip.pdn().gridV();
            const Watts uncore_w = chip.powerModel().uncoreW(grid_v);
            const Volts grid_floor = std::max(grid_v, Volts{0.6});
            if (grid_v < Volts{0.6}) {
                if (met.gridClamped)
                    met.gridClamped->inc();
                grid_warn.warn("grid voltage ", grid_v.value(),
                               " V clamped to 0.6 V at t=", now_ns,
                               " ns");
            }
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                Watts p;
                if (soa.gated(ci)) {
                    p = Watts{0.25};
                } else {
                    const chip::CoreAssignment &slot =
                        chip.assignment(c);
                    const double phase_scale =
                        slot.idle() ? 1.0
                                    : slot.traits->phaseActivityScale(
                                          now_ns * 1e-3);
                    p = chip.powerModel().coreTotalW(
                        Watts{scratch.activityW[ci] * phase_scale},
                        util::frequencyOf(
                            Picoseconds{soa.periodPs(ci)}),
                        std::max(Volts{soa.coreV(ci)}, Volts{0.6}),
                        Celsius{soa.tempC(ci)});
                }
                scratch.corePower[ci] = p;
                scratch.coreCurrent[ci] =
                    power::PowerModel::currentA(p, grid_floor);
            }
            scratch.uncoreCurrent = power::PowerModel::currentA(
                uncore_w, grid_floor);
            chip.thermal().step(scratch.dtSlow, scratch.corePower,
                                uncore_w);
            soa.refreshTemps(chip);
            if (sampled) {
                const double pkg =
                    chip.thermal().packageTempC().value();
                scratch.thermalQuiet =
                    std::fabs(pkg - scratch.prevPkgC)
                    <= config_.steady.thermalFlatC;
                scratch.prevPkgC = pkg;
            }
            profiler.end(kPhaseThermal, t0);
            spans.flush(now_ns);
        }

        // Electrical step. The summed |transient| doubles as the
        // sampled-mode quiet signal: any nonzero di/dt injection this
        // step means the rails are in motion.
        t0 = profiler.begin();
        double transient_total = 0.0;
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            const double transient =
                soa.gated(ci)
                    ? 0.0
                    : scratch.activity[ci].transientCurrentA(now_ns);
            transient_total += std::fabs(transient);
            scratch.instantCurrent[ci] =
                scratch.coreCurrent[ci] + Amps{transient};
            if (injector.stormActive())
                scratch.instantCurrent[ci] +=
                    Amps{injector.stormCurrentA(c, now_ns)};
        }
        chip.pdn().step(scratch.dtStep, scratch.instantCurrent,
                        scratch.uncoreCurrent);
        soa.refreshCoreV(chip, scratch.instantCurrent);
        profiler.end(kPhasePdn, t0);

        // Flight-recorder droop edges (same semantics as runLegacy,
        // fed from the voltage array).
        if (flight) {
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                const double v = soa.coreV(ci);
                const double limit =
                    scratch.steady.coreVoltageV[ci].value()
                    - kFlightDroopThresholdV;
                if (v < limit) {
                    if (!scratch.inDroop[ci]) {
                        scratch.inDroop[ci] = 1;
                        flight->record(
                            c, obs::FlightEventKind::DroopEnter,
                            now_ns, v);
                    }
                } else if (scratch.inDroop[ci]) {
                    scratch.inDroop[ci] = 0;
                    flight->record(c, obs::FlightEventKind::DroopExit,
                                   now_ns, v);
                }
            }
        }

        // Per-core ATM control loops, as one kernel over the arrays.
        t0 = profiler.begin();
        soa.controlStepAll(now_ns);
        profiler.end(kPhaseAtm, t0);

        // The timing race, against the array state. Observer fan-out
        // is bracketed by a store/reload handshake so a monitor that
        // reconfigures the chip (quarantine, clock reset) is picked
        // up before the next core's check -- exactly the view the
        // object path has.
        t0 = profiler.begin();
        bool violated = false;
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            double deficit = 0.0;
            if (!soa.gated(ci))
                deficit = soa.timingDeficitPs(ci);
            if (deficit <= 0.0) {
                scratch.inViolation[ci] = 0;
                continue;
            }
            if (scratch.inViolation[ci])
                continue;
            scratch.inViolation[ci] = 1;
            ViolationEvent ev;
            ev.timeNs = now_ns;
            ev.core = c;
            ev.deficitPs = deficit;
            const double u = scratch.failRng.uniform();
            ev.kind = u < 0.3 ? FailureKind::SystemCrash
                    : u < 0.8 ? FailureKind::AbnormalExit
                              : FailureKind::SilentDataCorruption;
            if (have_observers) {
                soa.storeDynamic(chip);
                dispatchViolation(ev);
                if (soa.syncAfterDispatch(chip))
                    config_edge = true;
            }
            if (ev.detected) {
                ++result.safety.detectedViolations;
            } else if (ev.kind
                       == FailureKind::SilentDataCorruption) {
                ++result.safety.silentFailures;
            }
            if (met.violations) {
                met.violations->inc();
                if (ev.detected)
                    met.detected->inc();
                else if (ev.kind
                         == FailureKind::SilentDataCorruption)
                    met.silent->inc();
                met.deficit->record(ev.deficitPs);
            }
            if (obs_.trace) {
                obs_.trace->instant("violation", trk_violations,
                                    now_ns, c);
            }
            if (flight) {
                flight->record(c, obs::FlightEventKind::Violation,
                               now_ns, ev.deficitPs);
                flight->requestDump();
            }
            if (scratch.violationCount < scratch.violationCap)
                result.violations[scratch.violationCount] = ev;
            else
                ++result.safety.droppedViolationEvents;
            ++scratch.violationCount;
            ++result.coreStats[ci].violations;
            violated = true;
        }
        profiler.end(kPhaseViolation, t0);
        if (violated && config_.stopOnViolation) {
            result.stoppedEarly = true;
            ++step;
            break;
        }

        // Statistics cadence.
        if (step % config_.statsCadence == 0) {
            t0 = profiler.begin();
            double chip_power =
                chip.powerModel().uncoreW(chip.pdn().gridV()).value();
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                const Volts v{soa.coreV(ci)};
                const util::Mhz f =
                    util::frequencyOf(Picoseconds{soa.periodPs(ci)});
                const bool gated = soa.gated(ci);
                scratch.frame[ci] = {f, v, gated};
                auto &cs = result.coreStats[ci];
                if (!gated) {
                    cs.freqMhz.add(f.value());
                    cs.voltageV.add(v.value());
                    cs.minVoltageV = cs.voltageV.count() == 1
                                   ? v.value()
                                   : std::min(cs.minVoltageV,
                                              v.value());
                    if (met.voltage || flight) {
                        const int worst = soa.lastWorstCount(ci);
                        if (met.voltage) {
                            met.voltage->record(v.value());
                            met.freq->record(f.value());
                            if (worst >= 0)
                                met.cpmWorst->record(worst);
                        }
                        if (flight) {
                            flight->record(
                                c, obs::FlightEventKind::Fmax,
                                now_ns, f.value());
                            if (worst >= 0)
                                flight->record(
                                    c, obs::FlightEventKind::Margin,
                                    now_ns, worst);
                        }
                    }
                }
                chip_power += scratch.corePower[ci].value();
            }
            result.chipPowerW.add(chip_power);
            result.maxCoreTempC =
                std::max(result.maxCoreTempC,
                         chip.thermal().maxCoreTempC().value());
            if (met.samples)
                met.samples->inc();
            if (have_observers) {
                soa.storeDynamic(chip);
                dispatchSample(Nanoseconds{now_ns}, scratch.frame);
                if (soa.syncAfterDispatch(chip))
                    config_edge = true;
            }
            profiler.end(kPhaseStats, t0);
        }

        // Sampled mode: feed the steady-state detector and, once
        // armed, fast-forward to just before the next scheduled event
        // (fault edge, di/dt pulse, end of run).
        if (sampled) {
            const bool quiet =
                !violated && !config_edge
                && soa.dpllAdjustments() == scratch.prevDpllAdjustments
                && transient_total <= 0.0
                && !injector.stormActive()
                && scratch.thermalQuiet
                && soa.railsQuiet(kFlightDroopThresholdV);
            scratch.prevDpllAdjustments = soa.dpllAdjustments();
            detect.note(quiet);
            if (detect.armed()) {
                const long from = step + 1;
                const long guard = config_.steady.guardSteps;
                long wake = scratch.totalSteps;
                if (campaign_) {
                    wake = std::min(
                        wake, stepAtOrAfter(scratch.nextFaultEdgeNs,
                                            config_.dtNs)
                                  - guard);
                }
                for (int c = 0; c < n; ++c) {
                    const auto ci = static_cast<std::size_t>(c);
                    if (soa.gated(ci)
                        || scratch.activity[ci].eventCurrentA()
                               <= 0.0) {
                        continue;
                    }
                    wake = std::min(
                        wake,
                        stepAtOrAfter(
                            scratch.activity[ci].nextEventNs(),
                            config_.dtNs)
                            - guard);
                }
                if (wake - from
                    >= static_cast<long>(config_.steady.minChunkSteps))
                {
                    if (flight) {
                        flight->record(
                            0, obs::FlightEventKind::FastForwardEnter,
                            now_ns, static_cast<double>(from));
                    }
                    const long resumed =
                        fastForwardSoa(ctx, from, wake);
                    result.fastForwardedSteps += resumed - from;
                    if (flight) {
                        flight->record(
                            0, obs::FlightEventKind::FastForwardExit,
                            static_cast<double>(resumed)
                                * config_.dtNs,
                            static_cast<double>(resumed - from));
                    }
                    detect.reset();
                    step = resumed - 1;
                }
            }
        }
    }

    soa.storeDynamic(chip);
    for (int c = 0; c < n; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        result.coreStats[ci].emergencies = chip.core(c).emergencyCount();
        result.safety.emergencies += result.coreStats[ci].emergencies;
    }
    result.minGridV = chip.pdn().minGridV().value();
    result.durationNs = static_cast<double>(step) * config_.dtNs;
    finishRun(scratch, result);

    if (campaign_) {
        scratch.faultEdges.clear();
        campaign_->collectExpirations(
            std::numeric_limits<double>::infinity(),
            scratch.faultEdges);
        for (std::size_t f : scratch.faultEdges)
            injector.revert(campaign_->spec(f));
    }

    result.steps = step;
    result.wallSeconds =
        (obs::monotonicWallNs() - run_start_wall_ns) * 1e-9;
    if (profiler.enabled())
        result.phaseStats = profiler.snapshot();
    spans.flush(result.durationNs);
    if (met.steps) {
        met.steps->inc(step);
        met.emergencies->inc(result.safety.emergencies);
        if (result.stoppedEarly)
            met.stoppedEarly->inc();
        for (int c = 0; c < n; ++c) {
            met.slewUps->inc(chip.core(c).dpll().slewUpCount());
            met.slewDowns->inc(chip.core(c).dpll().slewDownCount());
        }
    }
    return result;
}

// Sampled-mode fast-forward: with the PDN frozen at its settled
// state, only the cadence points do any work -- thermal/power and the
// control loops at the slow cadence, the statistics fold at the stats
// cadence -- so the steps between cadence points are skipped in O(1).
// Exits (returning the step where cycle stepping resumes) on any sign
// the steady state broke: a DPLL adjustment, a positive timing
// deficit, a thermal drift past the flatness gate, or an observer
// reconfiguration.
// atmlint: contract(engine_step)
long
SimEngine::fastForwardSoa(SoaCtx &ctx, long from_step, long to_step)
{
    chip::Chip &chip = ctx.chip;
    EngineSoaState &soa = ctx.soa;
    RunScratch &scratch = ctx.scratch;
    RunResult &result = ctx.result;
    EngineMetrics &met = ctx.met;
    obs::FlightRecorder *const flight = ctx.flight;
    const int n = static_cast<int>(soa.coreCount());
    const long slow = config_.slowCadence;
    const long stats = config_.statsCadence;
    const bool have_observers = !observers_.empty();

    long s = from_step;
    while (s < to_step) {
        // Jump to the next cadence point; nothing happens between
        // them while the electrical state is frozen.
        const long next_slow = ((s + slow - 1) / slow) * slow;
        const long next_stats = ((s + stats - 1) / stats) * stats;
        const long target = std::min(next_slow, next_stats);
        if (target >= to_step)
            return to_step;
        s = target;
        const double now_ns = static_cast<double>(s) * config_.dtNs;
        bool wake = false;

        if (s % slow == 0) {
            double t0 = ctx.profiler.begin();
            const Volts grid_v = chip.pdn().gridV();
            const Watts uncore_w = chip.powerModel().uncoreW(grid_v);
            const Volts grid_floor = std::max(grid_v, Volts{0.6});
            if (grid_v < Volts{0.6}) {
                if (met.gridClamped)
                    met.gridClamped->inc();
                ctx.gridWarn.warn("grid voltage ", grid_v.value(),
                                  " V clamped to 0.6 V at t=", now_ns,
                                  " ns");
            }
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                Watts p;
                if (soa.gated(ci)) {
                    p = Watts{0.25};
                } else {
                    const chip::CoreAssignment &slot =
                        chip.assignment(c);
                    const double phase_scale =
                        slot.idle() ? 1.0
                                    : slot.traits->phaseActivityScale(
                                          now_ns * 1e-3);
                    p = chip.powerModel().coreTotalW(
                        Watts{scratch.activityW[ci] * phase_scale},
                        util::frequencyOf(
                            Picoseconds{soa.periodPs(ci)}),
                        std::max(Volts{soa.coreV(ci)}, Volts{0.6}),
                        Celsius{soa.tempC(ci)});
                }
                scratch.corePower[ci] = p;
                scratch.coreCurrent[ci] =
                    power::PowerModel::currentA(p, grid_floor);
            }
            scratch.uncoreCurrent = power::PowerModel::currentA(
                uncore_w, grid_floor);
            chip.thermal().step(scratch.dtSlow, scratch.corePower,
                                uncore_w);
            soa.refreshTemps(chip);
            const double pkg = chip.thermal().packageTempC().value();
            scratch.thermalQuiet =
                std::fabs(pkg - scratch.prevPkgC)
                <= config_.steady.thermalFlatC;
            scratch.prevPkgC = pkg;
            if (!scratch.thermalQuiet)
                wake = true;

            // Control advance + violation probe at the slow cadence:
            // any control action or developing deficit hands back to
            // cycle stepping immediately.
            const long before_adjustments = soa.dpllAdjustments();
            soa.controlStepAll(now_ns);
            scratch.prevDpllAdjustments = soa.dpllAdjustments();
            if (soa.dpllAdjustments() != before_adjustments)
                wake = true;
            for (int c = 0; c < n && !wake; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                if (!soa.gated(ci) && soa.timingDeficitPs(ci) > 0.0)
                    wake = true;
            }
            ctx.profiler.end(kPhaseThermal, t0);
            ctx.spans.flush(now_ns);
        }

        if (s % stats == 0) {
            double t0 = ctx.profiler.begin();
            double chip_power =
                chip.powerModel().uncoreW(chip.pdn().gridV()).value();
            for (int c = 0; c < n; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                const Volts v{soa.coreV(ci)};
                const util::Mhz f =
                    util::frequencyOf(Picoseconds{soa.periodPs(ci)});
                const bool gated = soa.gated(ci);
                scratch.frame[ci] = {f, v, gated};
                auto &cs = result.coreStats[ci];
                if (!gated) {
                    cs.freqMhz.add(f.value());
                    cs.voltageV.add(v.value());
                    cs.minVoltageV = cs.voltageV.count() == 1
                                   ? v.value()
                                   : std::min(cs.minVoltageV,
                                              v.value());
                    if (met.voltage || flight) {
                        const int worst = soa.lastWorstCount(ci);
                        if (met.voltage) {
                            met.voltage->record(v.value());
                            met.freq->record(f.value());
                            if (worst >= 0)
                                met.cpmWorst->record(worst);
                        }
                        if (flight) {
                            flight->record(
                                c, obs::FlightEventKind::Fmax,
                                now_ns, f.value());
                            if (worst >= 0)
                                flight->record(
                                    c, obs::FlightEventKind::Margin,
                                    now_ns, worst);
                        }
                    }
                }
                chip_power += scratch.corePower[ci].value();
            }
            result.chipPowerW.add(chip_power);
            result.maxCoreTempC =
                std::max(result.maxCoreTempC,
                         chip.thermal().maxCoreTempC().value());
            if (met.samples)
                met.samples->inc();
            // Observer dispatch is decimated to the slow-cadence
            // points while fast-forwarding: the frame is frozen, so
            // the skipped dispatches would hand observers identical
            // samples, and any observer deadline lands within one
            // slow cadence (~10 ns) of its exact step. The stats
            // folds above still run at full cadence, so sample
            // counts and table means are unaffected. EXPERIMENTS.md
            // documents this as part of the sampled-mode envelope.
            if (have_observers && s % slow == 0) {
                soa.storeDynamic(chip);
                dispatchSample(Nanoseconds{now_ns}, scratch.frame);
                if (soa.syncAfterDispatch(chip))
                    wake = true;
            }
            ctx.profiler.end(kPhaseStats, t0);
        }

        ++s;
        if (wake)
            return s;
    }
    return s;
}

} // namespace atmsim::sim
