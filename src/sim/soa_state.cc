#include "sim/soa_state.h"

#include <cstring>

#include "chip/chip.h"
#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::sim {

namespace {

/** Byte-compare two equally sized vectors (pre-sized in build()). */
template <typename T>
bool
sameBytes(const std::vector<T> &a, const std::vector<T> &b)
{
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

} // namespace

// atmlint: contract(cold)
void
EngineSoaState::build(chip::Chip &chip,
                      const std::vector<util::Picoseconds> &exposure,
                      const std::vector<util::Volts> &steady_v,
                      double noisePs)
{
    const auto n = static_cast<std::size_t>(chip.coreCount());
    if (exposure.size() != n || steady_v.size() != n)
        util::panic("SoA build: per-core input size mismatch");

    const cpm::CpmBank &bank = chip.core(0).cpmBank();
    siteCount_ = bank.siteCount();
    chainStepPs_ = bank.site(0).chain().stepPs().value();
    chainLength_ = bank.site(0).chain().length();
    model_ = &chip.delayModel();
    noisePs_ = noisePs;
    gatedPeriodPs_ = util::periodOf(circuit::kPStateMinMhz).value();

    mode_.assign(n, 0);
    fixedPeriodPs_.assign(n, 0.0);
    speedFactor_.assign(n, 1.0);
    didtVuln_.assign(n, 0.0);
    siteNominal_.assign(n * siteCount_, 0.0);
    siteStuck_.assign(n * siteCount_, -1);
    vSlow_.assign(n, 0.0);
    vSlowValid_.assign(n, 0);
    lastWorst_.assign(n, -1);
    coreV_.assign(n, 0.0);
    tempC_.assign(n, 0.0);
    steadyV_.assign(n, 0.0);
    basePathPs_.assign(n, 0.0);
    dpll_.resize(n, chip.core(0).dpll().params());

    shadowMode_.assign(n, 0);
    shadowFixedPeriodPs_.assign(n, 0.0);
    shadowSpeedFactor_.assign(n, 0.0);
    shadowSiteNominal_.assign(n * siteCount_, 0.0);
    shadowSiteStuck_.assign(n * siteCount_, -1);
    shadowDpllPeriodPs_.assign(n, 0.0);
    shadowDpllLastUpdateNs_.assign(n, 0.0);
    shadowDpllLastEmergencyNs_.assign(n, 0.0);
    shadowDpllHeldMargin_.assign(n, 0);
    shadowDpllHeldValid_.assign(n, 0);
    shadowDpllDropout_.assign(n, 0);
    shadowVSlow_.assign(n, 0.0);
    shadowVSlowValid_.assign(n, 0);
    shadowLastWorst_.assign(n, 0);

    for (std::size_t c = 0; c < n; ++c) {
        const chip::AtmCore &core = chip.core(static_cast<int>(c));
        basePathPs_[c] = (util::Picoseconds{core.silicon().realPathIdlePs}
                          + exposure[c])
                             .value();
        steadyV_[c] = steady_v[c].value();
        coreV_[c] = chip.pdn().coreV(static_cast<int>(c)).value();
    }

    loadConfig(chip);
    loadDynamic(chip);
    refreshTemps(chip);
}

void
EngineSoaState::loadConfig(chip::Chip &chip)
{
    const std::size_t n = mode_.size();
    for (std::size_t c = 0; c < n; ++c) {
        const chip::AtmCore &core = chip.core(static_cast<int>(c));
        mode_[c] = static_cast<std::uint8_t>(core.mode());
        fixedPeriodPs_[c] =
            util::periodOf(core.fixedFrequencyMhz()).value();
        speedFactor_[c] = core.silicon().speedFactor;
        didtVuln_[c] = core.silicon().didtVulnerability;
        core.cpmBank().exportSoa(siteNominal_.data() + c * siteCount_,
                                 siteStuck_.data() + c * siteCount_);
    }
}

void
EngineSoaState::loadDynamic(chip::Chip &chip)
{
    const std::size_t n = mode_.size();
    for (std::size_t c = 0; c < n; ++c) {
        const chip::AtmCore &core = chip.core(static_cast<int>(c));
        dpll_.load(c, core.dpll());
        const chip::ControlState state = core.exportControlState();
        vSlow_[c] = state.vSlowV;
        vSlowValid_[c] = state.vSlowValid ? 1 : 0;
        lastWorst_[c] = state.lastWorstCount;
    }
}

void
EngineSoaState::storeDynamic(chip::Chip &chip) const
{
    const std::size_t n = mode_.size();
    for (std::size_t c = 0; c < n; ++c) {
        chip::AtmCore &core = chip.core(static_cast<int>(c));
        dpll_.store(c, core.dpll());
        chip::ControlState state;
        state.vSlowV = vSlow_[c];
        state.vSlowValid = vSlowValid_[c] != 0;
        state.lastWorstCount = lastWorst_[c];
        core.importControlState(state);
    }
}

void
EngineSoaState::refreshTemps(chip::Chip &chip)
{
    const std::size_t n = mode_.size();
    for (std::size_t c = 0; c < n; ++c)
        tempC_[c] = chip.thermal().coreTempC(static_cast<int>(c)).value();
}

ATM_HOT_PATH(engine_step)
void
EngineSoaState::refreshCoreV(const chip::Chip &chip,
                             const std::vector<util::Amps> &branch_currents)
{
    // Replicates PdnNetwork::coreV: vDie - R_branch * I_branch, with
    // the currents that the engine just passed to PdnNetwork::step
    // (== lastCoreCurrents_ inside the network).
    const double vDie = chip.pdn().gridV().value();
    const double branchRes = chip.pdn().params().coreLocalResOhm;
    const std::size_t n = coreV_.size();
    for (std::size_t c = 0; c < n; ++c)
        coreV_[c] = vDie - branchRes * branch_currents[c].value();
}

bool
EngineSoaState::syncAfterDispatch(chip::Chip &chip)
{
    shadowMode_ = mode_;
    shadowFixedPeriodPs_ = fixedPeriodPs_;
    shadowSpeedFactor_ = speedFactor_;
    shadowSiteNominal_ = siteNominal_;
    shadowSiteStuck_ = siteStuck_;
    shadowDpllPeriodPs_ = dpll_.periodPs;
    shadowDpllLastUpdateNs_ = dpll_.lastUpdateNs;
    shadowDpllLastEmergencyNs_ = dpll_.lastEmergencyNs;
    shadowDpllHeldMargin_ = dpll_.heldMargin;
    shadowDpllHeldValid_ = dpll_.heldValid;
    shadowDpllDropout_ = dpll_.dropout;
    shadowVSlow_ = vSlow_;
    shadowVSlowValid_ = vSlowValid_;
    shadowLastWorst_ = lastWorst_;

    loadConfig(chip);
    loadDynamic(chip);
    return differsFromShadow();
}

bool
EngineSoaState::differsFromShadow() const
{
    return !(sameBytes(mode_, shadowMode_)
             && sameBytes(fixedPeriodPs_, shadowFixedPeriodPs_)
             && sameBytes(speedFactor_, shadowSpeedFactor_)
             && sameBytes(siteNominal_, shadowSiteNominal_)
             && sameBytes(siteStuck_, shadowSiteStuck_)
             && sameBytes(dpll_.periodPs, shadowDpllPeriodPs_)
             && sameBytes(dpll_.lastUpdateNs, shadowDpllLastUpdateNs_)
             && sameBytes(dpll_.lastEmergencyNs,
                          shadowDpllLastEmergencyNs_)
             && sameBytes(dpll_.heldMargin, shadowDpllHeldMargin_)
             && sameBytes(dpll_.heldValid, shadowDpllHeldValid_)
             && sameBytes(dpll_.dropout, shadowDpllDropout_)
             && sameBytes(vSlow_, shadowVSlow_)
             && sameBytes(vSlowValid_, shadowVSlowValid_)
             && sameBytes(lastWorst_, shadowLastWorst_));
}

} // namespace atmsim::sim
