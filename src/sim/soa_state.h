/**
 * @file
 * Structure-of-arrays chip-step state for the engine's SoA mode
 * (DESIGN.md, engine architecture). Built from chip::Chip at run
 * start: contiguous per-core arrays for voltage, temperature, clock
 * period, CPM site constants, path exposure, and mode flags, plus a
 * DpllBankSoa for the per-core control loops. The engine's four
 * per-core hot loops (power/current, electrical step, control step,
 * violation scan) index these arrays instead of chasing
 * object-per-core pointers.
 *
 * Sync discipline: configuration state (mode, fixed frequency, CPM
 * programming, speed factors) is authoritative in the chip objects
 * and flows in via loadConfig(); control-loop dynamic state (DPLL
 * state, slow-voltage tracking, last margin) is authoritative in
 * these arrays between sync points and flows back via storeDynamic()
 * before any code that reads the objects (fault injection, observer
 * callbacks). The SoA mode is gated on bitwise identity with the
 * per-object path, so every kernel replicates the object arithmetic
 * operation for operation.
 *
 * The layout static_asserts below pin the util/quantity.h property
 * the views rely on: a strong type is exactly one double, so
 * exporting `Quantity::value()` into a raw array and re-wrapping on
 * the way back is value-preserving by construction.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "chip/atm_core.h"
#include "circuit/delay_model.h"
#include "cpm/cpm_bank.h"
#include "dpll/dpll.h"
#include "util/hotpath_annotations.h"
#include "util/quantity.h"

namespace atmsim::chip {
class Chip;
}

namespace atmsim::sim {

// The SoA views export strong-typed values into raw double arrays
// and re-wrap on the way back; that round trip is only sound while
// a quantity is layout-identical to (and trivially copyable as) a
// plain double.
static_assert(sizeof(util::Volts) == sizeof(double));
static_assert(sizeof(util::Celsius) == sizeof(double));
static_assert(sizeof(util::Picoseconds) == sizeof(double));
static_assert(sizeof(util::Nanoseconds) == sizeof(double));
static_assert(sizeof(util::Amps) == sizeof(double));
static_assert(sizeof(util::Watts) == sizeof(double));
static_assert(sizeof(util::Mhz) == sizeof(double));
static_assert(alignof(util::Volts) == alignof(double));
static_assert(alignof(util::Picoseconds) == alignof(double));
static_assert(std::is_trivially_copyable_v<util::Volts>);
static_assert(std::is_trivially_copyable_v<util::Celsius>);
static_assert(std::is_trivially_copyable_v<util::Picoseconds>);
static_assert(std::is_trivially_copyable_v<util::Nanoseconds>);
static_assert(std::is_trivially_copyable_v<util::Amps>);
static_assert(std::is_trivially_copyable_v<util::Watts>);
static_assert(std::is_trivially_copyable_v<util::Mhz>);

/** Contiguous per-core step state of one chip. */
class EngineSoaState
{
  public:
    // CoreMode flattened to bytes; values pinned to the enum.
    static constexpr std::uint8_t kModeAtm =
        static_cast<std::uint8_t>(chip::CoreMode::AtmOverclock);
    static constexpr std::uint8_t kModeFixed =
        static_cast<std::uint8_t>(chip::CoreMode::FixedFrequency);
    static constexpr std::uint8_t kModeGated =
        static_cast<std::uint8_t>(chip::CoreMode::Gated);

    // --- Lifecycle / sync ----------------------------------------------

    /**
     * Size the arrays and pull the full state from the chip. Called
     * once per run, after the engine has settled the electrical and
     * thermal networks.
     *
     * @param exposure Per-core scenario path exposure.
     * @param steady_v Per-core steady-state voltages (droop
     *        reference).
     * @param noisePs This run's timing noise.
     */
    // atmlint: contract(cold)
    void build(chip::Chip &chip,
               const std::vector<util::Picoseconds> &exposure,
               const std::vector<util::Volts> &steady_v, double noisePs);

    /** Re-pull configuration state (mode, fixed frequency, CPM
     *  programming, speed/vulnerability factors) from the objects. */
    void loadConfig(chip::Chip &chip);

    /** Re-pull control-loop dynamic state from the objects. */
    void loadDynamic(chip::Chip &chip);

    /** Push control-loop dynamic state back into the objects. */
    void storeDynamic(chip::Chip &chip) const;

    /** Refresh the cached per-core temperatures (after a thermal
     *  step or a thermal fault edge). */
    void refreshTemps(chip::Chip &chip);

    /** Refresh the cached per-core voltages after a PDN step, from
     *  the branch currents just passed to it (replicates
     *  PdnNetwork::coreV). */
    ATM_HOT_PATH(engine_step)
    void refreshCoreV(const chip::Chip &chip,
                      const std::vector<util::Amps> &branch_currents);

    /**
     * Reload from the chip after an observer callback and report
     * whether the callback reconfigured anything. The caller must
     * storeDynamic() before the callback; the reload then only
     * differs from the pre-callback arrays if the observer mutated
     * the chip (quarantine, fallback, re-entry, clock reset).
     */
    bool syncAfterDispatch(chip::Chip &chip);

    // --- Hot kernels ----------------------------------------------------

    /**
     * Array-form AtmCore::stepControl over all cores: slow-voltage
     * tracking, CPM bank scan, DPLL observe.
     */
    ATM_HOT_PATH(engine_step)
    void controlStepAll(double nowNs) noexcept
    {
        const std::size_t n = mode_.size();
        for (std::size_t c = 0; c < n; ++c) {
            const double v = coreV_[c];
            if (!vSlowValid_[c]) {
                vSlow_[c] = v;
                vSlowValid_[c] = 1;
            } else {
                vSlow_[c] += (v - vSlow_[c]) * chip::kVSlowTrackingAlpha;
            }
            if (mode_[c] != kModeAtm)
                continue;
            const double f = model_->factor(util::Volts{v},
                                            util::Celsius{tempC_[c]});
            const double fs = f * speedFactor_[c];
            const int margin = cpm::worstCountSoa(
                siteNominal_.data() + c * siteCount_,
                siteStuck_.data() + c * siteCount_,
                static_cast<int>(siteCount_), dpll_.periodPs[c], f,
                chainStepPs_ * fs, chainLength_);
            lastWorst_[c] = margin;
            dpll_.observe(c, nowNs, margin);
        }
    }

    /** Array-form AtmCore::timingDeficitPs (positive = violation).
     *  The caller handles Gated cores (always meet timing). */
    ATM_HOT_PATH(engine_step)
    [[nodiscard]] double timingDeficitPs(std::size_t core) const noexcept
    {
        const double v = coreV_[core];
        double vEff = v;
        if (vSlowValid_[core]) {
            vEff = vSlow_[core] - (vSlow_[core] - v) * didtVuln_[core];
            vEff = std::max(vEff, 0.6);
        }
        const double real =
            basePathPs_[core]
                * (speedFactor_[core]
                   * model_->factor(util::Volts{vEff},
                                    util::Celsius{tempC_[core]}))
            + noisePs_;
        return real - periodPs(core);
    }

    /** Array-form AtmCore::periodPs. */
    ATM_HOT_PATH(engine_step)
    [[nodiscard]] double periodPs(std::size_t core) const noexcept
    {
        if (mode_[core] == kModeAtm)
            return dpll_.periodPs[core];
        if (mode_[core] == kModeFixed)
            return fixedPeriodPs_[core];
        return gatedPeriodPs_;
    }

    /** True while every core rail sits within the droop threshold of
     *  its steady-state voltage (sampled-mode quiet gate). */
    ATM_HOT_PATH(engine_step)
    [[nodiscard]] bool railsQuiet(double thresholdV) const noexcept
    {
        const std::size_t n = mode_.size();
        for (std::size_t c = 0; c < n; ++c) {
            if (coreV_[c] < steadyV_[c] - thresholdV)
                return false;
        }
        return true;
    }

    // --- Accessors ------------------------------------------------------

    [[nodiscard]] std::size_t coreCount() const { return mode_.size(); }
    [[nodiscard]] bool gated(std::size_t core) const
    {
        return mode_[core] == kModeGated;
    }
    [[nodiscard]] double coreV(std::size_t core) const
    {
        return coreV_[core];
    }
    [[nodiscard]] double tempC(std::size_t core) const
    {
        return tempC_[core];
    }
    [[nodiscard]] double steadyCoreV(std::size_t core) const
    {
        return steadyV_[core];
    }
    [[nodiscard]] int lastWorstCount(std::size_t core) const
    {
        return lastWorst_[core];
    }

    /** Total DPLL period adjustments so far (settling gate). */
    [[nodiscard]] long dpllAdjustments() const { return dpll_.adjustments; }

  private:
    [[nodiscard]] bool differsFromShadow() const;

    // Per-core configuration (loadConfig).
    std::vector<std::uint8_t> mode_;
    std::vector<double> fixedPeriodPs_;
    std::vector<double> speedFactor_;
    std::vector<double> didtVuln_;
    std::vector<double> siteNominal_; ///< cores x sites, row-major.
    std::vector<int> siteStuck_;      ///< cores x sites, -1 = healthy.

    // Per-core control-loop dynamic state (loadDynamic/storeDynamic).
    dpll::DpllBankSoa dpll_;
    std::vector<double> vSlow_;
    std::vector<std::uint8_t> vSlowValid_;
    std::vector<int> lastWorst_;

    // Per-core environment caches.
    std::vector<double> coreV_;
    std::vector<double> tempC_;
    std::vector<double> steadyV_;
    std::vector<double> basePathPs_; ///< realPathIdlePs + exposure.

    // Shadows for syncAfterDispatch change detection.
    std::vector<std::uint8_t> shadowMode_;
    std::vector<double> shadowFixedPeriodPs_;
    std::vector<double> shadowSpeedFactor_;
    std::vector<double> shadowSiteNominal_;
    std::vector<int> shadowSiteStuck_;
    std::vector<double> shadowDpllPeriodPs_;
    std::vector<double> shadowDpllLastUpdateNs_;
    std::vector<double> shadowDpllLastEmergencyNs_;
    std::vector<int> shadowDpllHeldMargin_;
    std::vector<std::uint8_t> shadowDpllHeldValid_;
    std::vector<std::uint8_t> shadowDpllDropout_;
    std::vector<double> shadowVSlow_;
    std::vector<std::uint8_t> shadowVSlowValid_;
    std::vector<int> shadowLastWorst_;

    // Run constants.
    const circuit::DelayModel *model_ = nullptr;
    double chainStepPs_ = 0.0;
    double gatedPeriodPs_ = 0.0;
    double noisePs_ = 0.0;
    std::size_t siteCount_ = 0;
    int chainLength_ = 0;
};

} // namespace atmsim::sim
