/**
 * @file
 * Steady-state detection for the engine's sampled mode (ROADMAP item
 * 1, after Pac-Sim -- see PAPERS.md). The detector watches the step
 * loop for a configurable window of consecutive "quiet" steps -- no
 * droop excursion beyond the flight-recorder threshold, no DPLL
 * period adjustment, flat package-thermal derivative, no transient
 * load current, and no imminent fault edge -- and arms once the
 * window fills. The engine then fast-forwards simulation time with
 * closed-form thermal/stats updates, dropping back to cycle-level
 * stepping a guard distance before the next scheduled event (di/dt
 * pulse, fault activation/expiration, end of run) and whenever a
 * control action or observer reconfiguration fires.
 */

#pragma once

#include <cstddef>

#include "util/hotpath_annotations.h"

namespace atmsim::sim {

/** Sampled-mode tuning (SimConfig::steady). */
struct SteadyStateConfig
{
    /**
     * Consecutive quiet steps before the detector arms. At the 0.2 ns
     * default step this is ~100 ns -- long enough to cover a full
     * DPLL update interval plus the slow-voltage tracking tail.
     */
    int windowSteps = 512;

    /**
     * Steps of cycle-accurate settling re-entered *before* a known
     * upcoming event (fault edge, scheduled di/dt pulse, end of run),
     * so the electrical state an event lands on is fully converged.
     */
    int guardSteps = 256;

    /**
     * Smallest stretch worth fast-forwarding. Jumps shorter than this
     * stay cycle-accurate: the bookkeeping of a mode switch would
     * cost more than it saves.
     */
    int minChunkSteps = 512;

    /**
     * Thermal-derivative gate: the largest package-temperature change
     * (degrees C) across one slow-cadence thermal step that still
     * counts as "flat". 1 mC per 10 ns is ~100 C/ms, far above any
     * real steady-state drift and far below a workload phase edge.
     */
    double thermalFlatC = 1e-3;
};

/**
 * Consecutive-quiet-step counter with an arming threshold. Kept
 * trivially simple on purpose: it runs once per engine step, inside
 * the engine_step hot-path contract.
 */
class SteadyStateDetector
{
  public:
    /** Validates the config (fatal on nonsense bounds). */
    explicit SteadyStateDetector(const SteadyStateConfig &config);

    /** Feed one step's quiet verdict. */
    ATM_HOT_PATH(engine_step)
    void note(bool quiet) noexcept
    {
        quietStreak_ = quiet ? quietStreak_ + 1 : 0;
    }

    /** True once a full quiet window has accumulated. */
    ATM_HOT_PATH(engine_step)
    [[nodiscard]] bool armed() const noexcept
    {
        return quietStreak_ >= static_cast<long>(config_.windowSteps);
    }

    /** Re-arm from scratch (after any event or mode exit). */
    ATM_HOT_PATH(engine_step)
    void reset() noexcept { quietStreak_ = 0; }

    /** Current run of consecutive quiet steps. */
    [[nodiscard]] long quietStreak() const noexcept { return quietStreak_; }

    [[nodiscard]] const SteadyStateConfig &config() const { return config_; }

  private:
    SteadyStateConfig config_;
    long quietStreak_ = 0;
};

} // namespace atmsim::sim
