/**
 * @file
 * Results of a time-stepped engine run: per-core frequency traces,
 * power/thermal envelopes, and the timing-violation events that
 * manifest as the failures the paper observes (abnormal application
 * exit, silent data corruption, system crash).
 */

#pragma once

#include <string>
#include <vector>

#include "util/stats.h"

namespace atmsim::sim {

/** How a timing violation manifested (Sec. III-B). */
enum class FailureKind {
    AbnormalExit,          ///< e.g. segmentation fault
    SilentDataCorruption,  ///< caught by result checking
    SystemCrash,           ///< checkstop / hang
};

/** Printable failure-kind name. */
const char *failureKindName(FailureKind kind);

/** One observed timing violation. */
struct ViolationEvent
{
    double timeNs = 0.0;
    int core = -1;
    double deficitPs = 0.0; ///< How far the path missed the cycle.
    FailureKind kind = FailureKind::AbnormalExit;
};

/** Per-core statistics of one run. */
struct CoreRunStats
{
    util::RunningStats freqMhz;
    util::RunningStats voltageV;
    double minVoltageV = 0.0;
    long emergencies = 0;
    long violations = 0;
};

/** Aggregate result of one engine run. */
struct RunResult
{
    double durationNs = 0.0;
    std::vector<CoreRunStats> coreStats;
    util::RunningStats chipPowerW;
    double maxCoreTempC = 0.0;
    double minGridV = 0.0;
    std::vector<ViolationEvent> violations;
    bool stoppedEarly = false;

    /** True when any violation occurred. */
    bool failed() const { return !violations.empty(); }

    /** Mean frequency of one core over the run (MHz). */
    double meanFreqMhz(int core) const;
};

} // namespace atmsim::sim
