/**
 * @file
 * Results of a time-stepped engine run: per-core frequency traces,
 * power/thermal envelopes, and the timing-violation events that
 * manifest as the failures the paper observes (abnormal application
 * exit, silent data corruption, system crash).
 */

#pragma once

#include <string>
#include <vector>

#include "sim/telemetry.h"
#include "util/stats.h"

namespace atmsim::sim {

/** How a timing violation manifested (Sec. III-B). */
enum class FailureKind {
    AbnormalExit,          ///< e.g. segmentation fault
    SilentDataCorruption,  ///< caught by result checking
    SystemCrash,           ///< checkstop / hang
};

/** Printable failure-kind name. */
const char *failureKindName(FailureKind kind);

/**
 * One observed timing-violation episode. An episode starts when a
 * core's real path first misses its cycle and ends when the core
 * meets timing again (e.g. after the control loop stretches the clock
 * or a safety monitor reconfigures the core); contiguous violating
 * steps belong to one episode.
 */
struct ViolationEvent
{
    double timeNs = 0.0;
    int core = -1;
    double deficitPs = 0.0; ///< How far the path missed the cycle.
    FailureKind kind = FailureKind::AbnormalExit;
    bool detected = false;  ///< A safety monitor caught this episode.
};

/** Per-core statistics of one run. */
struct CoreRunStats
{
    util::RunningStats freqMhz;
    util::RunningStats voltageV;
    double minVoltageV = 0.0;
    long emergencies = 0;
    long violations = 0; ///< Violation episodes (not violating steps).
};

/** Aggregate result of one engine run. */
struct RunResult
{
    double durationNs = 0.0;
    std::vector<CoreRunStats> coreStats;
    util::RunningStats chipPowerW;
    double maxCoreTempC = 0.0;
    double minGridV = 0.0;

    /**
     * Stored violation episodes, capped at kMaxStoredViolations; the
     * per-core episode counts in coreStats and the safety counters
     * keep accumulating past the cap (the overflow is tallied in
     * safety.droppedViolationEvents).
     */
    std::vector<ViolationEvent> violations;
    bool stoppedEarly = false;

    /** Safety accounting (violation detection, monitor activity). */
    SafetyCounters safety;

    /** True when any violation occurred. */
    bool failed() const { return !violations.empty(); }

    /** Sum of per-core violation episodes. */
    long totalViolations() const;

    /** Mean frequency of one core over the run (MHz). */
    double meanFreqMhz(int core) const;
};

/** Cap on stored ViolationEvent entries per run. */
inline constexpr std::size_t kMaxStoredViolations = 4096;

} // namespace atmsim::sim
