/**
 * @file
 * Results of a time-stepped engine run: per-core frequency traces,
 * power/thermal envelopes, the timing-violation events that manifest
 * as the failures the paper observes (abnormal application exit,
 * silent data corruption, system crash), and the run's own
 * performance record (steps advanced, wall time, per-phase
 * breakdown) feeding the run-provenance manifests.
 */

#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/phase.h"
#include "util/stats.h"

namespace atmsim::sim {

/** How a timing violation manifested (Sec. III-B). */
enum class FailureKind {
    AbnormalExit,          ///< e.g. segmentation fault
    SilentDataCorruption,  ///< caught by result checking
    SystemCrash,           ///< checkstop / hang
};

/** Printable failure-kind name. */
[[nodiscard]] const char *failureKindName(FailureKind kind);

/**
 * One observed timing-violation episode. An episode starts when a
 * core's real path first misses its cycle and ends when the core
 * meets timing again (e.g. after the control loop stretches the clock
 * or a safety monitor reconfigures the core); contiguous violating
 * steps belong to one episode.
 */
struct ViolationEvent
{
    double timeNs = 0.0;
    int core = -1;
    double deficitPs = 0.0; ///< How far the path missed the cycle.
    FailureKind kind = FailureKind::AbnormalExit;
    bool detected = false;  ///< A safety monitor caught this episode.
};

/**
 * Safety counters of one engine run: how the chip and the (optional)
 * safety monitor fared under faults. The engine fills the violation
 * accounting; an attached monitor merges its quarantine/recovery
 * bookkeeping at the end of the run.
 */
struct SafetyCounters
{
    /** DPLL emergency engagements, summed over cores. */
    long emergencies = 0;

    /** Violation episodes a monitor observed and reacted to. */
    long detectedViolations = 0;

    /**
     * Silent failures: violation episodes nobody detected whose
     * manifestation is silent data corruption. Crashes and abnormal
     * exits are loud even without a monitor; SDC is not.
     */
    long silentFailures = 0;

    /** Anomalous-sensor detections (caught before a violation). */
    long anomalies = 0;

    /** Cores pulled back to the safe default configuration. */
    long quarantines = 0;

    /** Escalations from quarantine to the static-margin fallback. */
    long fallbacks = 0;

    /** Staged re-entry steps taken toward fine-tuned limits. */
    long reentrySteps = 0;

    /** Cores fully recovered to their fine-tuned deployment. */
    long recoveries = 0;

    /** Core-time spent below the fine-tuned deployment (ns). */
    double degradedTimeNs = 0.0;

    /** Violation events not stored in RunResult (cap exceeded). */
    long droppedViolationEvents = 0;

    /** Render one line per non-zero counter. */
    void print(std::ostream &os) const;

    /**
     * Named (counter, value) view, in declaration order -- the
     * manifest writer and metric exporters iterate this instead of
     * hand-copying every field.
     */
    [[nodiscard]] std::vector<std::pair<const char *, double>> named() const;
};

/** Per-core statistics of one run. */
struct CoreRunStats
{
    util::RunningStats freqMhz;
    util::RunningStats voltageV;
    double minVoltageV = 0.0;
    long emergencies = 0;
    long violations = 0; ///< Violation episodes (not violating steps).
};

/** Aggregate result of one engine run. */
struct RunResult
{
    double durationNs = 0.0;
    std::vector<CoreRunStats> coreStats;
    util::RunningStats chipPowerW;
    double maxCoreTempC = 0.0;
    double minGridV = 0.0;

    /**
     * Stored violation episodes, capped at kMaxStoredViolations; the
     * per-core episode counts in coreStats and the safety counters
     * keep accumulating past the cap (the overflow is tallied in
     * safety.droppedViolationEvents).
     */
    std::vector<ViolationEvent> violations;
    bool stoppedEarly = false;

    /** Safety accounting (violation detection, monitor activity). */
    SafetyCounters safety;

    // --- Run performance record ----------------------------------------

    /** Engine steps actually advanced. */
    long steps = 0;

    /**
     * Steps covered by sampled-mode fast-forward (a subset of steps:
     * they were skipped over with closed-form updates instead of
     * being cycle-stepped). 0 in Legacy/Soa modes.
     */
    long fastForwardedSteps = 0;

    /** Wall-clock time spent inside run() (seconds; always filled). */
    double wallSeconds = 0.0;

    /**
     * Per-phase wall-clock breakdown. Filled only when observability
     * is attached to the engine (profiling is off otherwise).
     */
    std::vector<obs::PhaseStat> phaseStats;

    /** Steps/sec throughput of this run (0 when unmeasured). */
    [[nodiscard]] double stepsPerSecond() const;

    /** True when any violation occurred. */
    [[nodiscard]] bool failed() const { return !violations.empty(); }

    /** Sum of per-core violation episodes. */
    [[nodiscard]] long totalViolations() const;

    /** Mean frequency of one core over the run (MHz). */
    [[nodiscard]] double meanFreqMhz(int core) const;
};

/** Cap on stored ViolationEvent entries per run. */
inline constexpr std::size_t kMaxStoredViolations = 4096;

} // namespace atmsim::sim
