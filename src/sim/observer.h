/**
 * @file
 * Engine observation interface: the single per-sample dispatch point
 * of a SimEngine run.
 *
 * PR 3 folded the legacy SimEngine::Probe callback into this
 * interface: the engine builds one per-core sample frame at the
 * statistics cadence and hands it to every attached observer, so
 * telemetry recorders, safety monitors, and metric exporters all
 * share a single dispatch instead of stacking per-core std::function
 * calls in the hot loop.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "sim/run_result.h"
#include "util/quantity.h"

namespace atmsim::sim {

/** One core's state at a statistics sample. */
struct CoreSample
{
    util::Mhz freqMhz{0.0};
    util::Volts voltageV{0.0};
    bool gated = false;
};

/**
 * Runtime observer interface: telemetry recorders and supervisors
 * implement this to watch an engine run and (for supervisors) react
 * to it -- the engine reads core modes and CPM configurations every
 * step, so reconfigurations take effect immediately. The engine
 * never owns its observers; several can be attached to one run.
 */
class EngineObserver
{
  public:
    virtual ~EngineObserver() = default;

    /**
     * Called once before the first step with the number of
     * statistics samples the run will produce at most -- a reserve()
     * hint so per-sample recorders allocate once instead of growing
     * inside the hot loop. Runs that stop early deliver fewer.
     */
    virtual void onRunStart(std::size_t expected_samples)
    {
        (void)expected_samples;
    }

    /**
     * A core entered a timing-violation episode. Return true when the
     * observer detects the event (and typically reconfigures the
     * core); episodes no observer detects count as silent failures
     * when they manifest as SDC.
     */
    virtual bool onViolation(const ViolationEvent &event)
    {
        (void)event;
        return false;
    }

    /**
     * Called at the statistics cadence with the per-core sample
     * frame. The frame is owned by the engine and only valid for the
     * duration of the call.
     */
    virtual void onSample(util::Nanoseconds now,
                          const std::vector<CoreSample> &cores)
    {
        (void)now;
        (void)cores;
    }

    /** Merge observer-side counters at the end of a run. */
    virtual void finish(util::Nanoseconds end, SafetyCounters &counters)
    {
        (void)end;
        (void)counters;
    }
};

} // namespace atmsim::sim
