#include "sim/telemetry.h"

#include <algorithm>

#include "util/logging.h"

namespace atmsim::sim {

TelemetryRecorder::TelemetryRecorder(int core_count,
                                     double min_interval_ns)
    : minIntervalNs_(min_interval_ns)
{
    if (core_count <= 0)
        util::fatal("telemetry needs at least one core");
    if (min_interval_ns < 0.0)
        util::fatal("negative telemetry interval");
    series_.resize(static_cast<std::size_t>(core_count));
    lastKeptNs_.assign(static_cast<std::size_t>(core_count), -1e18);
}

void
TelemetryRecorder::record(util::Nanoseconds now, int core,
                          util::Mhz freq, util::Volts v)
{
    if (core < 0 || core >= coreCount())
        util::fatal("telemetry record: core ", core, " out of range");
    const auto ci = static_cast<std::size_t>(core);
    if (now.value() - lastKeptNs_[ci] < minIntervalNs_)
        return;
    lastKeptNs_[ci] = now.value();
    series_[ci].push_back({now, freq, v});
}

// Pre-loop callback: reserves the series once per run so the
// per-sample record() appends stay allocation-free.
// atmlint: contract(cold)
void
TelemetryRecorder::onRunStart(std::size_t expected_samples)
{
    for (auto &s : series_)
        s.reserve(s.size() + expected_samples);
}

void
TelemetryRecorder::onSample(util::Nanoseconds now,
                            const std::vector<CoreSample> &cores)
{
    const int n = std::min(coreCount(), static_cast<int>(cores.size()));
    for (int c = 0; c < n; ++c) {
        const CoreSample &cs = cores[static_cast<std::size_t>(c)];
        record(now, c, cs.freqMhz, cs.voltageV);
    }
}

const std::vector<TelemetrySample> &
TelemetryRecorder::series(int core) const
{
    if (core < 0 || core >= coreCount())
        util::fatal("telemetry series: core ", core, " out of range");
    return series_[static_cast<std::size_t>(core)];
}

std::size_t
TelemetryRecorder::totalSamples() const
{
    std::size_t total = 0;
    for (const auto &s : series_)
        total += s.size();
    return total;
}

double
TelemetryRecorder::windowAvgFreqMhz(int core, double window_ns) const
{
    const auto &s = series(core);
    if (s.empty())
        util::fatal("telemetry window: no samples for core ", core);
    const double cutoff = s.back().timeNs.value() - window_ns;
    double sum = 0.0;
    std::size_t count = 0;
    for (auto it = s.rbegin(); it != s.rend(); ++it) {
        if (it->timeNs.value() < cutoff)
            break;
        sum += it->freqMhz.value();
        ++count;
    }
    return sum / static_cast<double>(count);
}

void
TelemetryRecorder::writeCsv(std::ostream &os) const
{
    os << "time_ns,core,freq_mhz,voltage_v\n";
    for (int c = 0; c < coreCount(); ++c) {
        for (const auto &sample : series(c)) {
            os << sample.timeNs.value() << ',' << c << ','
               << sample.freqMhz.value() << ','
               << sample.voltageV.value() << '\n';
        }
    }
}

void
TelemetryRecorder::clear()
{
    for (auto &s : series_)
        s.clear();
    for (auto &t : lastKeptNs_)
        t = -1e18;
}

} // namespace atmsim::sim
