/**
 * @file
 * Lumped RC thermal model: per-core junction temperatures over a
 * shared package node. Temperature plays a secondary role for ATM
 * (Sec. VII-A: long-term effects are well within the control loop's
 * response time) but the stress-test procedure drives the die to
 * 70 degC, so the thermal path is modelled for completeness.
 */

#pragma once

#include <vector>

#include "util/quantity.h"

namespace atmsim::thermal {

using util::Celsius;
using util::Seconds;
using util::Watts;

/** Thermal parameters of the package and cores. */
struct ThermalParams
{
    double ambientC = 25.0;      ///< Inlet air temperature (degC).
    double packageResKpW = 0.25; ///< Package+heatsink resistance (K/W).
    double coreResKpW = 0.55;    ///< Core-to-package resistance (K/W).
    double packageTauS = 20e-3;  ///< Package thermal time constant (s).
    double coreTauS = 2e-3;      ///< Core thermal time constant (s).
};

/** Time-stepped thermal state for one chip. */
class ThermalModel
{
  public:
    /**
     * @param params Thermal parameters.
     * @param core_count Number of cores on the chip.
     */
    ThermalModel(const ThermalParams &params, int core_count);

    /**
     * Advance temperatures by one time step.
     *
     * @param dt Time step.
     * @param core_powers Per-core power.
     * @param uncore_power Non-core chip power.
     */
    void step(Seconds dt, const std::vector<Watts> &core_powers,
              Watts uncore_power);

    /** Jump to steady state for the given power distribution. */
    void settle(const std::vector<Watts> &core_powers, Watts uncore_power);

    /** Junction temperature of a core. */
    Celsius coreTempC(int core) const;

    /** Package (shared) temperature. */
    Celsius packageTempC() const { return Celsius{packageC_}; }

    /** Hottest core temperature. */
    Celsius maxCoreTempC() const;

    /**
     * Fault injection: a local thermal excursion (e.g. a detached
     * heat-sink pad) added on top of the modelled junction temperature
     * of one core. Cleared by setting 0.
     */
    void setFaultOffsetC(int core, Celsius offset);
    Celsius faultOffsetC(int core) const;

    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
    double packageC_;
    std::vector<double> coreC_;
    std::vector<double> faultOffsetC_;
};

} // namespace atmsim::thermal
