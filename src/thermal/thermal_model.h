/**
 * @file
 * Lumped RC thermal model: per-core junction temperatures over a
 * shared package node. Temperature plays a secondary role for ATM
 * (Sec. VII-A: long-term effects are well within the control loop's
 * response time) but the stress-test procedure drives the die to
 * 70 degC, so the thermal path is modelled for completeness.
 */

#pragma once

#include <vector>

namespace atmsim::thermal {

/** Thermal parameters of the package and cores. */
struct ThermalParams
{
    double ambientC = 25.0;      ///< Inlet air temperature.
    double packageResKpW = 0.25; ///< Package+heatsink resistance (K/W).
    double coreResKpW = 0.55;    ///< Core-to-package resistance (K/W).
    double packageTauS = 20e-3;  ///< Package thermal time constant.
    double coreTauS = 2e-3;      ///< Core thermal time constant.
};

/** Time-stepped thermal state for one chip. */
class ThermalModel
{
  public:
    /**
     * @param params Thermal parameters.
     * @param core_count Number of cores on the chip.
     */
    ThermalModel(const ThermalParams &params, int core_count);

    /**
     * Advance temperatures by one time step.
     *
     * @param dt_s Time step (seconds).
     * @param core_powers_w Per-core power (W).
     * @param uncore_power_w Non-core chip power (W).
     */
    void step(double dt_s, const std::vector<double> &core_powers_w,
              double uncore_power_w);

    /** Jump to steady state for the given power distribution. */
    void settle(const std::vector<double> &core_powers_w,
                double uncore_power_w);

    /** Junction temperature of a core (degC). */
    double coreTempC(int core) const;

    /** Package (shared) temperature (degC). */
    double packageTempC() const { return packageC_; }

    /** Hottest core temperature (degC). */
    double maxCoreTempC() const;

    /**
     * Fault injection: a local thermal excursion (e.g. a detached
     * heat-sink pad) added on top of the modelled junction temperature
     * of one core. Cleared by setting 0.
     */
    void setFaultOffsetC(int core, double offset_c);
    double faultOffsetC(int core) const;

    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
    double packageC_;
    std::vector<double> coreC_;
    std::vector<double> faultOffsetC_;
};

} // namespace atmsim::thermal
