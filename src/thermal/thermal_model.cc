#include "thermal/thermal_model.h"

#include <algorithm>

#include "util/logging.h"

namespace atmsim::thermal {

ThermalModel::ThermalModel(const ThermalParams &params, int core_count)
    : params_(params)
{
    if (core_count <= 0)
        util::fatal("thermal model needs at least one core");
    packageC_ = params_.ambientC;
    coreC_.assign(static_cast<std::size_t>(core_count), params_.ambientC);
    faultOffsetC_.assign(static_cast<std::size_t>(core_count), 0.0);
}

void
ThermalModel::step(Seconds dt, const std::vector<Watts> &core_powers,
                   Watts uncore_power)
{
    if (core_powers.size() != coreC_.size()) {
        util::fatal("thermal step: expected ", coreC_.size(),
                    " core powers, got ", core_powers.size());
    }
    Watts total = uncore_power;
    for (Watts p : core_powers)
        total += p;

    const double dt_s = dt.value();
    const double pkg_target = params_.ambientC
                            + params_.packageResKpW * total.value();
    packageC_ += (pkg_target - packageC_) / params_.packageTauS * dt_s;

    for (std::size_t c = 0; c < coreC_.size(); ++c) {
        const double target = packageC_
                            + params_.coreResKpW * core_powers[c].value();
        coreC_[c] += (target - coreC_[c]) / params_.coreTauS * dt_s;
    }
}

void
ThermalModel::settle(const std::vector<Watts> &core_powers,
                     Watts uncore_power)
{
    if (core_powers.size() != coreC_.size()) {
        util::fatal("thermal settle: expected ", coreC_.size(),
                    " core powers, got ", core_powers.size());
    }
    Watts total = uncore_power;
    for (Watts p : core_powers)
        total += p;
    packageC_ = params_.ambientC + params_.packageResKpW * total.value();
    for (std::size_t c = 0; c < coreC_.size(); ++c)
        coreC_[c] = packageC_ + params_.coreResKpW * core_powers[c].value();
}

Celsius
ThermalModel::coreTempC(int core) const
{
    if (core < 0 || core >= static_cast<int>(coreC_.size()))
        util::fatal("thermal coreTempC: core ", core, " out of range");
    return Celsius{coreC_[static_cast<std::size_t>(core)]
                   + faultOffsetC_[static_cast<std::size_t>(core)]};
}

Celsius
ThermalModel::maxCoreTempC() const
{
    double max_c = coreC_.front() + faultOffsetC_.front();
    for (std::size_t c = 1; c < coreC_.size(); ++c)
        max_c = std::max(max_c, coreC_[c] + faultOffsetC_[c]);
    return Celsius{max_c};
}

void
ThermalModel::setFaultOffsetC(int core, Celsius offset)
{
    if (core < 0 || core >= static_cast<int>(coreC_.size()))
        util::fatal("thermal fault: core ", core, " out of range");
    faultOffsetC_[static_cast<std::size_t>(core)] = offset.value();
}

Celsius
ThermalModel::faultOffsetC(int core) const
{
    if (core < 0 || core >= static_cast<int>(coreC_.size()))
        util::fatal("thermal fault: core ", core, " out of range");
    return Celsius{faultOffsetC_[static_cast<std::size_t>(core)]};
}

} // namespace atmsim::thermal
