#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace atmsim::util {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

RunningStats
RunningStats::fromState(std::size_t n, double mean, double m2,
                        double min, double max)
{
    RunningStats stats;
    if (n == 0)
        return stats;
    stats.n_ = n;
    stats.mean_ = mean;
    stats.m2_ = m2;
    stats.min_ = min;
    stats.max_ = max;
    return stats;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
IntHistogram::add(long value)
{
    ++counts_[value];
    ++total_;
}

void
IntHistogram::add(long value, std::size_t count)
{
    if (count == 0)
        return;
    counts_[value] += count;
    total_ += count;
}

std::size_t
IntHistogram::countOf(long value) const
{
    auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
}

long
IntHistogram::minValue() const
{
    if (counts_.empty())
        panic("IntHistogram::minValue on empty histogram");
    return counts_.begin()->first;
}

long
IntHistogram::maxValue() const
{
    if (counts_.empty())
        panic("IntHistogram::maxValue on empty histogram");
    return counts_.rbegin()->first;
}

double
IntHistogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double sum = 0.0;
    for (const auto &[value, count] : counts_)
        sum += static_cast<double>(value) * static_cast<double>(count);
    return sum / static_cast<double>(total_);
}

std::vector<std::pair<long, std::size_t>>
IntHistogram::items() const
{
    return {counts_.begin(), counts_.end()};
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        fatal("percentile of empty sample set");
    if (p < 0.0 || p > 100.0)
        fatal("percentile p must be in [0, 100], got ", p);
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean requires positive values, got ", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace atmsim::util
