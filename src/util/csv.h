/**
 * @file
 * Minimal CSV writer so benchmark harnesses can dump machine-readable
 * series next to the human-readable tables.
 */

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace atmsim::util {

/**
 * Streaming CSV writer with RFC-4180-style quoting of cells that
 * contain separators, quotes or newlines.
 */
class CsvWriter
{
  public:
    /**
     * Open a CSV file for writing; fatal() on failure.
     *
     * @param path Output file path.
     */
    explicit CsvWriter(const std::string &path);

    /** Write one row of string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write one row of numeric cells. */
    void writeNumericRow(const std::vector<double> &cells);

    /** Flush and close the underlying file. */
    void close();

  private:
    [[nodiscard]] static std::string quote(const std::string &cell);

    std::ofstream out_;
};

} // namespace atmsim::util
