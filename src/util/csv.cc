#include "util/csv.h"

#include <sstream>

#include "util/logging.h"

namespace atmsim::util {

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_)
        fatal("cannot open CSV output file '", path, "'");
}

std::string
CsvWriter::quote(const std::string &cell)
{
    const bool needs_quote =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << quote(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream os;
        os << v;
        text.push_back(os.str());
    }
    writeRow(text);
}

void
CsvWriter::close()
{
    out_.close();
}

} // namespace atmsim::util
