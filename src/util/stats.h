/**
 * @file
 * Streaming and batch statistics helpers used throughout the
 * characterization and benchmark harnesses.
 */

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace atmsim::util {

/**
 * Numerically-stable streaming accumulator (Welford) for count, mean,
 * variance, min and max.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    /** @return Number of samples added. */
    [[nodiscard]] std::size_t count() const { return n_; }

    /** @return Arithmetic mean (0 if empty). */
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }

    /** @return Population variance (0 if fewer than 2 samples). */
    [[nodiscard]] double variance() const;

    /** @return Population standard deviation. */
    [[nodiscard]] double stddev() const;

    /** @return Smallest sample (+inf if empty). */
    [[nodiscard]] double min() const { return min_; }

    /** @return Largest sample (-inf if empty). */
    [[nodiscard]] double max() const { return max_; }

    /** @return Sum of all samples. */
    [[nodiscard]]
    double sum() const { return mean_ * static_cast<double>(n_); }

    /**
     * Raw second central moment (Welford M2). Exposed -- together
     * with fromState() -- so checkpoints can round-trip the exact
     * accumulator state: reconstructing M2 from variance() would
     * re-round and break bitwise resume determinism.
     */
    [[nodiscard]] double m2() const { return m2_; }

    /**
     * Rebuild an accumulator from serialized state. min/max are
     * ignored when n == 0 (the empty accumulator has none).
     */
    [[nodiscard]] static RunningStats fromState(std::size_t n,
                                                double mean, double m2,
                                                double min, double max);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/**
 * Fixed-width histogram over integer-valued observations, used for the
 * limit-configuration distributions of Figs. 7-9.
 */
class IntHistogram
{
  public:
    /** Add one observation. */
    void add(long value);

    /** Add one observation `count` times (checkpoint restore path). */
    void add(long value, std::size_t count);

    /** @return Count of a specific value. */
    [[nodiscard]] std::size_t countOf(long value) const;

    /** @return Total number of observations. */
    [[nodiscard]] std::size_t total() const { return total_; }

    /** @return Smallest observed value; undefined when empty. */
    [[nodiscard]] long minValue() const;

    /** @return Largest observed value; undefined when empty. */
    [[nodiscard]] long maxValue() const;

    /** @return Number of distinct observed values. */
    [[nodiscard]] std::size_t distinct() const { return counts_.size(); }

    /** @return Mean of the observations (0 when empty). */
    [[nodiscard]] double mean() const;

    /** @return Sorted (value, count) pairs. */
    [[nodiscard]] std::vector<std::pair<long, std::size_t>> items() const;

    /** @return true if no observations were added. */
    [[nodiscard]] bool empty() const { return total_ == 0; }

  private:
    std::map<long, std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * Percentile of a sample set using linear interpolation between order
 * statistics.
 *
 * @param values Sample set (copied and sorted internally).
 * @param p Percentile in [0, 100].
 */
[[nodiscard]] double percentile(std::vector<double> values, double p);

/** Arithmetic mean of a vector (0 if empty). */
[[nodiscard]] double mean(const std::vector<double> &values);

/** Geometric mean of a vector of positive values (0 if empty). */
[[nodiscard]] double geomean(const std::vector<double> &values);

} // namespace atmsim::util
