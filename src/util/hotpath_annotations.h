/**
 * @file
 * Hot-path contract annotations, consumed by atmlint's `hot-path`
 * check (tools/atmlint/checks/hot_path.py).
 *
 * A *contract profile* names a set of operations forbidden in the
 * transitive call closure of an annotated root function:
 *
 *   - `engine_step`: the per-step simulation loop (SimEngine::run's
 *     inner loop and everything it calls each step).  The fault
 *     campaign manifest pins `engine.atm_loop` at ~73% of wall time;
 *     a stray allocation, blocking lock, wall-clock read, or virtual
 *     dispatch here silently erases any SoA-refactor win.  Forbids
 *     heap allocation, blocking locks, I/O, wall-clock/unseeded RNG
 *     reads, and virtual dispatch.  Throwing (`util::fatal`,
 *     `throw`, `.at()`) is *allowed*: precondition guards abort on
 *     programmer error and cost nothing untaken.
 *   - `signal_handler`: the async-signal path (BenchSession's
 *     SIGINT/SIGTERM handler).  signal-safety already polices
 *     allocation/stdio there with a documented best-effort-flush
 *     baseline; this profile enforces the half that was "genuinely
 *     fixed" in that trade -- no blocking lock acquisition (try-lock
 *     is fine) -- plus no RNG.
 *   - `flight_record`: FlightRecorder::record and friends -- the
 *     strictest tier.  Documented as O(1), lock-free and
 *     allocation-free; the contract adds no-throw, no-I/O, no
 *     clock/RNG, no virtual dispatch.
 *   - `cold`: the inverse marker.  A function called from a hot root
 *     but provably once-per-run (metric handle resolution in a
 *     run()-scope constructor, span flushers) is a closure *stop*:
 *     the walk does not descend into it.  Use sparingly and only
 *     with a justification comment.
 *
 * Two spellings attach a profile to a definition:
 *
 *   ATM_HOT_PATH(engine_step)
 *   void MyClass::step() { ... }
 *
 * or, when a macro on the definition reads poorly (constructors,
 * out-of-class template definitions):
 *
 *   // atmlint: contract(engine_step)
 *   void MyClass::step() { ... }
 *
 * Both expand to nothing in C++ -- the contract lives entirely in
 * the linter, so annotating costs zero codegen and zero runtime.
 * See docs/STATIC_ANALYSIS.md for the full profile table.
 */

#pragma once

/** Attach a hot-path contract profile to the following definition. */
#define ATM_HOT_PATH(profile)
