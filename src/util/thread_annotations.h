/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * Wraps the `thread_safety` attribute family behind `ATM_`-prefixed
 * macros that expand to nothing on compilers without the attributes
 * (gcc), so annotated headers stay portable while clang builds with
 * `-Wthread-safety` (wired into the ATMSIM_WERROR configuration)
 * verify the locking contract at compile time.
 *
 * Convention (DESIGN.md, "Thread safety"): classes are
 * single-threaded by default; the classes that the future parallel
 * engine shares across threads -- the metrics registry, the trace
 * collector, the logging globals -- own a util::Mutex and annotate
 * every piece of guarded state with ATM_GUARDED_BY. The atmlint
 * `lock-discipline` check enforces the annotation discipline on
 * every compiler; clang additionally proves the lock is actually
 * held at each access.
 */

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ATM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ATM_THREAD_ANNOTATION
#define ATM_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Marks a type as a lockable capability (e.g. a mutex). */
#define ATM_CAPABILITY(x) ATM_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define ATM_SCOPED_CAPABILITY ATM_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with `x` held. */
#define ATM_GUARDED_BY(x) ATM_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by `x`. */
#define ATM_PT_GUARDED_BY(x) ATM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that acquires the capability and holds it on return. */
#define ATM_ACQUIRE(...) \
    ATM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define ATM_RELEASE(...) \
    ATM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that may acquire the capability (returns success). */
#define ATM_TRY_ACQUIRE(...) \
    ATM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Callable only with the listed capabilities already held. */
#define ATM_REQUIRES(...) \
    ATM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Callable only with the listed capabilities NOT held. */
#define ATM_EXCLUDES(...) \
    ATM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returning a reference to the given capability. */
#define ATM_RETURN_CAPABILITY(x) \
    ATM_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: suppress the analysis for one function. */
#define ATM_NO_THREAD_SAFETY_ANALYSIS \
    ATM_THREAD_ANNOTATION(no_thread_safety_analysis)
