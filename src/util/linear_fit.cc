#include "util/linear_fit.h"

#include <cmath>

#include "util/logging.h"

namespace atmsim::util {

LineFit
fitLine(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        fatal("fitLine: size mismatch (", x.size(), " vs ", y.size(), ")");
    if (x.size() < 2)
        fatal("fitLine: need at least 2 samples, got ", x.size());

    const double n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n;
    const double my = sy / n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    // atmlint: allow(float-equality) -- sxx is a sum of squares; it
    // is exactly 0.0 iff every x equals the mean (the division that
    // follows is safe for any nonzero value).
    if (sxx == 0.0)
        fatal("fitLine: degenerate x values (all equal)");

    LineFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    // R^2 = 1 - SS_res / SS_tot; a constant y is a perfect fit.
    // atmlint: allow(float-equality) -- exact zero iff y is constant.
    if (syy == 0.0) {
        fit.r2 = 1.0;
    } else {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double resid = y[i] - fit(x[i]);
            ss_res += resid * resid;
        }
        fit.r2 = 1.0 - ss_res / syy;
    }
    return fit;
}

} // namespace atmsim::util
