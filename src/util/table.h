/**
 * @file
 * Plain-text table rendering for the benchmark harnesses, which print
 * the same rows/series as the paper's tables and figures.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace atmsim::util {

/** Column alignment within a TextTable. */
enum class Align {
    Left,
    Right,
};

/**
 * A simple monospace table with a header row, per-column alignment and
 * automatic column widths.
 */
class TextTable
{
  public:
    /** Set the header row; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Set per-column alignments (default: first left, rest right). */
    void setAlignments(std::vector<Align> aligns);

    /** Append one data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal rule before the next added row. */
    void addRule();

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    [[nodiscard]] std::string toString() const;

    /** @return Number of data rows. */
    [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_; ///< empty row == rule
};

/** Format a double with fixed precision. */
[[nodiscard]] std::string fmtFixed(double value, int precision);

/** Format a double as an integer-rounded string. */
[[nodiscard]] std::string fmtInt(double value);

/** Format a percentage with one decimal, e.g. "12.3%". */
[[nodiscard]] std::string fmtPercent(double fraction);

} // namespace atmsim::util
