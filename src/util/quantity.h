/**
 * @file
 * Zero-overhead dimensional safety: tagged strong types for the
 * physical quantities the simulator passes across module boundaries.
 *
 * Every quantity that crosses a public interface — clock periods in
 * picoseconds, loop times in nanoseconds, frequencies in MHz, supply
 * voltages in volts, droop magnitudes in millivolts, junction
 * temperatures in Celsius, power in watts, CPM inserted-delay steps —
 * is a distinct type. Same-dimension arithmetic works directly;
 * cross-dimension conversion requires a named function (periodOf,
 * toPicoseconds, toVolts, ...), so a mis-scaled delay step or an
 * ns-for-ps mixup is a compile error instead of a silently corrupted
 * configuration.
 *
 * The types are trivially copyable wrappers around one double (or one
 * int for CpmSteps) — same size, same codegen as the raw scalar.
 * Internals are free to unwrap via value() in hot loops; the contract
 * lives at the interface.
 */

#pragma once

#include <compare>
#include <type_traits>

namespace atmsim::util {

/**
 * A value tagged with its dimension/unit. Only same-tag arithmetic is
 * defined; there is no implicit construction from (or conversion to)
 * raw double, so quantities of different units never mix silently.
 */
template <typename Tag>
class Quantity
{
  public:
    /** Zero-initialized. */
    constexpr Quantity() = default;

    /** Tag a raw scalar. Explicit: the caller names the unit. */
    constexpr explicit Quantity(double value) : value_(value) {}

    /** Unwrap to the raw scalar (hot-loop escape hatch). */
    [[nodiscard]] constexpr double value() const { return value_; }

    // --- Same-dimension arithmetic -------------------------------------

    constexpr Quantity operator+(Quantity o) const
    {
        return Quantity{value_ + o.value_};
    }
    constexpr Quantity operator-(Quantity o) const
    {
        return Quantity{value_ - o.value_};
    }
    constexpr Quantity operator-() const { return Quantity{-value_}; }

    // --- Dimensionless scaling -----------------------------------------

    constexpr Quantity operator*(double s) const
    {
        return Quantity{value_ * s};
    }
    constexpr Quantity operator/(double s) const
    {
        return Quantity{value_ / s};
    }
    friend constexpr Quantity operator*(double s, Quantity q)
    {
        return Quantity{s * q.value_};
    }

    /** Ratio of two same-unit quantities is dimensionless. */
    constexpr double operator/(Quantity o) const { return value_ / o.value_; }

    constexpr Quantity &operator+=(Quantity o)
    {
        value_ += o.value_;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity o)
    {
        value_ -= o.value_;
        return *this;
    }
    constexpr Quantity &operator*=(double s)
    {
        value_ *= s;
        return *this;
    }
    constexpr Quantity &operator/=(double s)
    {
        value_ /= s;
        return *this;
    }

    // --- Ordering ------------------------------------------------------

    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    double value_ = 0.0;
};

// Dimension tags. Empty structs: they exist only to make the types
// distinct.
struct PicosecondsTag;
struct NanosecondsTag;
struct MicrosecondsTag;
struct SecondsTag;
struct MhzTag;
struct VoltsTag;
struct MillivoltsTag;
struct CelsiusTag;
struct WattsTag;
struct AmpsTag;

using Picoseconds = Quantity<PicosecondsTag>;   ///< Circuit-level time.
using Nanoseconds = Quantity<NanosecondsTag>;   ///< System-level time.
using Microseconds = Quantity<MicrosecondsTag>; ///< Scheduling time.
using Seconds = Quantity<SecondsTag>;           ///< Thermal time.
using Mhz = Quantity<MhzTag>;                   ///< Clock frequency.
using Volts = Quantity<VoltsTag>;               ///< Supply voltage.
using Millivolts = Quantity<MillivoltsTag>;     ///< Droop magnitudes.
using Celsius = Quantity<CelsiusTag>;           ///< Junction temperature.
using Watts = Quantity<WattsTag>;               ///< Power.
using Amps = Quantity<AmpsTag>;                 ///< PDN current.

/**
 * Count of CPM inserted-delay segments — the fine-tuning knob. An
 * integer quantity, deliberately distinct from every time unit: a
 * step count is converted to picoseconds only through a core's
 * manufactured per-segment delays, never by a scale factor.
 */
class CpmSteps
{
  public:
    constexpr CpmSteps() = default;
    constexpr explicit CpmSteps(int steps) : steps_(steps) {}

    [[nodiscard]] constexpr int value() const { return steps_; }

    constexpr CpmSteps operator+(CpmSteps o) const
    {
        return CpmSteps{steps_ + o.steps_};
    }
    constexpr CpmSteps operator-(CpmSteps o) const
    {
        return CpmSteps{steps_ - o.steps_};
    }
    constexpr CpmSteps operator-() const { return CpmSteps{-steps_}; }
    constexpr CpmSteps &operator+=(CpmSteps o)
    {
        steps_ += o.steps_;
        return *this;
    }
    constexpr CpmSteps &operator-=(CpmSteps o)
    {
        steps_ -= o.steps_;
        return *this;
    }
    constexpr auto operator<=>(const CpmSteps &) const = default;

  private:
    int steps_ = 0;
};

// --- Explicit cross-dimension conversions ------------------------------

/** Clock period of a frequency (replaces the raw mhzToPs helper). */
[[nodiscard]] constexpr Picoseconds
periodOf(Mhz f)
{
    return Picoseconds{1.0e6 / f.value()};
}

/** Frequency whose period is the given time (replaces psToMhz). */
[[nodiscard]] constexpr Mhz
frequencyOf(Picoseconds period)
{
    return Mhz{1.0e6 / period.value()};
}

[[nodiscard]] constexpr Picoseconds
toPicoseconds(Nanoseconds t)
{
    return Picoseconds{t.value() * 1.0e3};
}

[[nodiscard]] constexpr Nanoseconds
toNanoseconds(Picoseconds t)
{
    return Nanoseconds{t.value() * 1.0e-3};
}

[[nodiscard]] constexpr Nanoseconds
toNanoseconds(Microseconds t)
{
    return Nanoseconds{t.value() * 1.0e3};
}

[[nodiscard]] constexpr Microseconds
toMicroseconds(Nanoseconds t)
{
    return Microseconds{t.value() * 1.0e-3};
}

[[nodiscard]] constexpr Seconds
toSeconds(Nanoseconds t)
{
    return Seconds{t.value() * 1.0e-9};
}

[[nodiscard]] constexpr Nanoseconds
toNanoseconds(Seconds t)
{
    return Nanoseconds{t.value() * 1.0e9};
}

[[nodiscard]] constexpr Volts
toVolts(Millivolts v)
{
    return Volts{v.value() * 1.0e-3};
}

[[nodiscard]] constexpr Millivolts
toMillivolts(Volts v)
{
    return Millivolts{v.value() * 1.0e3};
}

/** Frequency from a GHz scalar (there is no Ghz type; MHz is canon). */
[[nodiscard]] constexpr Mhz
mhzFromGhz(double ghz)
{
    return Mhz{ghz * 1.0e3};
}

// --- Zero-overhead guarantees ------------------------------------------

static_assert(std::is_trivially_copyable_v<Picoseconds> &&
                  std::is_trivially_copyable_v<Nanoseconds> &&
                  std::is_trivially_copyable_v<Mhz> &&
                  std::is_trivially_copyable_v<Volts> &&
                  std::is_trivially_copyable_v<Millivolts> &&
                  std::is_trivially_copyable_v<Celsius> &&
                  std::is_trivially_copyable_v<Watts> &&
                  std::is_trivially_copyable_v<Amps> &&
                  std::is_trivially_copyable_v<CpmSteps>,
              "quantities must stay trivially copyable (pass in registers)");

static_assert(sizeof(Picoseconds) == sizeof(double) &&
                  sizeof(Mhz) == sizeof(double) &&
                  sizeof(Volts) == sizeof(double) &&
                  sizeof(Watts) == sizeof(double) &&
                  sizeof(CpmSteps) == sizeof(int),
              "quantities must add no storage overhead over the raw scalar");

static_assert(std::is_standard_layout_v<Picoseconds> &&
                  std::is_standard_layout_v<CpmSteps>,
              "quantities must stay standard-layout");

// The safety property itself: units never mix silently.
static_assert(!std::is_convertible_v<Nanoseconds, Picoseconds> &&
                  !std::is_convertible_v<Picoseconds, Nanoseconds> &&
                  !std::is_convertible_v<Volts, Millivolts> &&
                  !std::is_convertible_v<double, Picoseconds> &&
                  !std::is_convertible_v<Picoseconds, double> &&
                  !std::is_convertible_v<int, CpmSteps>,
              "cross-unit and raw-scalar conversions must stay explicit");

namespace literals {

constexpr Picoseconds operator""_ps(long double v)
{
    return Picoseconds{static_cast<double>(v)};
}
constexpr Picoseconds operator""_ps(unsigned long long v)
{
    return Picoseconds{static_cast<double>(v)};
}
constexpr Nanoseconds operator""_ns(long double v)
{
    return Nanoseconds{static_cast<double>(v)};
}
constexpr Nanoseconds operator""_ns(unsigned long long v)
{
    return Nanoseconds{static_cast<double>(v)};
}
constexpr Microseconds operator""_us(long double v)
{
    return Microseconds{static_cast<double>(v)};
}
constexpr Microseconds operator""_us(unsigned long long v)
{
    return Microseconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v)
{
    return Seconds{static_cast<double>(v)};
}
constexpr Mhz operator""_mhz(long double v)
{
    return Mhz{static_cast<double>(v)};
}
constexpr Mhz operator""_mhz(unsigned long long v)
{
    return Mhz{static_cast<double>(v)};
}
constexpr Mhz operator""_ghz(long double v)
{
    return mhzFromGhz(static_cast<double>(v));
}
constexpr Volts operator""_volt(long double v)
{
    return Volts{static_cast<double>(v)};
}
constexpr Millivolts operator""_mv(long double v)
{
    return Millivolts{static_cast<double>(v)};
}
constexpr Millivolts operator""_mv(unsigned long long v)
{
    return Millivolts{static_cast<double>(v)};
}
constexpr Celsius operator""_degc(long double v)
{
    return Celsius{static_cast<double>(v)};
}
constexpr Celsius operator""_degc(unsigned long long v)
{
    return Celsius{static_cast<double>(v)};
}
constexpr Watts operator""_watt(long double v)
{
    return Watts{static_cast<double>(v)};
}
constexpr CpmSteps operator""_steps(unsigned long long v)
{
    return CpmSteps{static_cast<int>(v)};
}

} // namespace literals

} // namespace atmsim::util
