/**
 * @file
 * Text-mode scatter/line plots used by the example programs to
 * visualize droop waveforms and frequency series without a GUI.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace atmsim::util {

/**
 * Fixed-size character-grid plot. Series are rendered with distinct
 * glyphs, axes are labelled with min/max values.
 */
class AsciiPlot
{
  public:
    /**
     * @param width Plot area width in characters.
     * @param height Plot area height in characters.
     */
    AsciiPlot(int width = 72, int height = 20);

    /**
     * Add a named series.
     *
     * @param name Legend label.
     * @param x Abscissae.
     * @param y Ordinates (same length as x).
     * @param glyph Character used for this series' points.
     */
    void addSeries(const std::string &name, const std::vector<double> &x,
                   const std::vector<double> &y, char glyph);

    /** Set axis captions. */
    void setLabels(const std::string &x_label, const std::string &y_label);

    /** Render the plot to a stream. */
    void print(std::ostream &os) const;

  private:
    struct Series
    {
        std::string name;
        std::vector<double> x;
        std::vector<double> y;
        char glyph;
    };

    int width_;
    int height_;
    std::string xLabel_;
    std::string yLabel_;
    std::vector<Series> series_;
};

} // namespace atmsim::util
