/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be fully reproducible from a seed, so all
 * stochastic components draw from an Rng instance that is explicitly
 * threaded through the object graph. The generator is xoshiro256**
 * seeded through SplitMix64; independent streams are derived with
 * fork().
 */

#pragma once

#include <cstdint>
#include <vector>

namespace atmsim::util {

/** Stateless SplitMix64 step, used for seeding and stream derivation. */
[[nodiscard]] std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Small, fast, high-quality PRNG (xoshiro256**) with explicit seeding
 * and independent stream derivation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return The next raw 64-bit value. */
    std::uint64_t u64();

    /** @return A double uniformly distributed in [0, 1). */
    double uniform();

    /** @return A double uniformly distributed in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return An integer uniformly distributed in [0, n). n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** @return A standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /** @return A normal deviate with the given mean and stddev. */
    double gaussian(double mean, double sigma);

    /** @return A log-normal deviate: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** @return An exponential deviate with the given rate (1/mean). */
    double exponential(double rate);

    /** @return true with probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child stream. Forking with the same
     * streamId always yields the same child sequence regardless of how
     * much this generator has been consumed since construction.
     *
     * @param stream_id Identifier for the child stream.
     */
    [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

    /** Shuffle a vector in place (Fisher-Yates). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    std::uint64_t origin_; ///< Seed this stream was created from.
    bool haveCached_ = false;
    double cached_ = 0.0;
};

/**
 * Low-discrepancy sequence (van der Corput, base 2) used to stratify
 * repeated characterization runs: guarantees that a handful of repeats
 * covers the whole noise range while still looking irregular.
 */
class VanDerCorput
{
  public:
    /** @param scramble XOR scrambling constant for decorrelation. */
    explicit VanDerCorput(std::uint64_t scramble = 0);

    /** @return The index-th element of the scrambled sequence in [0,1). */
    [[nodiscard]] double at(std::uint64_t index) const;

    /** @return The next element of the sequence. */
    double next();

  private:
    std::uint64_t index_ = 0;
    std::uint64_t scramble_;
};

} // namespace atmsim::util
