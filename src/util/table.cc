#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace atmsim::util {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
    if (aligns_.size() != header_.size()) {
        aligns_.assign(header_.size(), Align::Right);
        if (!aligns_.empty())
            aligns_[0] = Align::Left;
    }
}

void
TextTable::setAlignments(std::vector<Align> aligns)
{
    aligns_ = std::move(aligns);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size()) {
        fatal("TextTable row width ", row.size(), " != header width ",
              header_.size());
    }
    if (row.empty())
        fatal("TextTable rows must be non-empty; use addRule for rules");
    rows_.push_back(std::move(row));
}

void
TextTable::addRule()
{
    rows_.emplace_back(); // sentinel: empty row renders as a rule
}

void
TextTable::print(std::ostream &os) const
{
    const std::size_t cols = header_.size();
    std::vector<std::size_t> widths(cols, 0);
    for (std::size_t c = 0; c < cols; ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_rule = [&]() {
        for (std::size_t c = 0; c < cols; ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : std::string();
            const std::size_t pad = widths[c] - cell.size();
            os << "| ";
            if (aligns_.size() > c && aligns_[c] == Align::Right)
                os << std::string(pad, ' ') << cell;
            else
                os << cell << std::string(pad, ' ');
            os << ' ';
        }
        os << "|\n";
    };

    print_rule();
    print_row(header_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_row(row);
    }
    print_rule();
}

std::string
TextTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
fmtFixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
fmtInt(double value)
{
    std::ostringstream os;
    os << static_cast<long long>(std::llround(value));
    return os.str();
}

std::string
fmtPercent(double fraction)
{
    return fmtFixed(fraction * 100.0, 1) + "%";
}

} // namespace atmsim::util
