#include "util/json_reader.h"

#include <cctype>
#include <charconv>

namespace atmsim::util {

namespace {

/** Parse stack depth a document may nest before being rejected. */
constexpr int kMaxDepth = 64;

[[nodiscard]] std::string
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "bool";
      case JsonValue::Kind::Number: return "number";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

} // namespace

/** Single-pass cursor over the document text. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonParseError("JSON parse error at offset "
                             + std::to_string(pos_) + ": " + what);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    [[nodiscard]] char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail("invalid literal");
        pos_ += word.size();
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting deeper than " + std::to_string(kMaxDepth));
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of document");
        switch (peek()) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return parseString();
          case 't': {
              literal("true");
              JsonValue v;
              v.kind_ = JsonValue::Kind::Bool;
              v.bool_ = true;
              return v;
          }
          case 'f': {
              literal("false");
              JsonValue v;
              v.kind_ = JsonValue::Kind::Bool;
              v.bool_ = false;
              return v;
          }
          case 'n': {
              literal("null");
              return {};
          }
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject(int depth)
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected object key string");
            JsonValue key = parseString();
            skipWhitespace();
            expect(':');
            // Duplicate keys: the later value wins, like every
            // last-one-wins JSON reader.
            v.object_.insert_or_assign(std::move(key.string_),
                                       parseValue(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray(int depth)
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array_.push_back(parseValue(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                v.string_.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': v.string_.push_back('"'); break;
              case '\\': v.string_.push_back('\\'); break;
              case '/': v.string_.push_back('/'); break;
              case 'b': v.string_.push_back('\b'); break;
              case 'f': v.string_.push_back('\f'); break;
              case 'n': v.string_.push_back('\n'); break;
              case 'r': v.string_.push_back('\r'); break;
              case 't': v.string_.push_back('\t'); break;
              case 'u': appendUnicodeEscape(v.string_); break;
              default: fail("invalid escape");
            }
        }
    }

    [[nodiscard]] unsigned
    hex4()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return code;
    }

    void
    appendUnicodeEscape(std::string &out)
    {
        unsigned code = hex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\'
                || text_[pos_ + 1] != 'u')
                fail("unpaired UTF-16 surrogate");
            pos_ += 2;
            const unsigned low = hex4();
            if (low < 0xDC00 || low > 0xDFFF)
                fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
        }
        // Encode the code point as UTF-8.
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool sawDigit = false;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                sawDigit = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+'
                       || c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (!sawDigit)
            fail("invalid number");
        const std::string_view token = text_.substr(start, pos_ - start);
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        const char *first = token.data();
        const char *last = token.data() + token.size();
        const auto res = std::from_chars(first, last, v.number_);
        if (res.ec != std::errc() || res.ptr != last)
            fail("invalid number '" + std::string(token) + "'");
        if (integral) {
            long long exact = 0;
            const auto ires = std::from_chars(first, last, exact);
            if (ires.ec == std::errc() && ires.ptr == last) {
                v.numberIsInt_ = true;
                v.intNumber_ = exact;
            }
        }
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw JsonTypeError("expected bool, got " + kindName(kind_));
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number)
        throw JsonTypeError("expected number, got " + kindName(kind_));
    return number_;
}

long long
JsonValue::asLong() const
{
    if (kind_ != Kind::Number)
        throw JsonTypeError("expected number, got " + kindName(kind_));
    if (numberIsInt_)
        return intNumber_;
    const auto truncated = static_cast<long long>(number_);
    // atmlint: allow(float-equality) -- exact integrality test: the
    // cast round-trips iff the double holds an integer value.
    if (static_cast<double>(truncated) != number_)
        throw JsonTypeError("number " + std::to_string(number_)
                            + " is not an integer");
    return truncated;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw JsonTypeError("expected string, got " + kindName(kind_));
    return string_;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        throw JsonTypeError("expected array, got " + kindName(kind_));
    return array_;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        throw JsonTypeError("expected object, got " + kindName(kind_));
    return object_;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    const Object &obj = asObject();
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *value = find(key);
    if (!value)
        throw JsonTypeError("missing key '" + std::string(key) + "'");
    return *value;
}

bool
JsonValue::contains(std::string_view key) const
{
    return find(key) != nullptr;
}

JsonValue
JsonValue::parse(std::string_view text)
{
    return JsonParser(text).document();
}

} // namespace atmsim::util
