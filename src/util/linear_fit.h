/**
 * @file
 * Ordinary least-squares line fitting, used by the frequency and
 * performance predictors (Eq. 1 and Fig. 12 of the paper).
 */

#pragma once

#include <vector>

namespace atmsim::util {

/** Result of a univariate linear regression y = slope * x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0; ///< Coefficient of determination.

    /** Evaluate the fitted line at x. */
    double operator()(double x) const { return slope * x + intercept; }
};

/**
 * Fit a straight line through (x, y) samples by ordinary least squares.
 *
 * @param x Abscissae; must have the same size as y and size >= 2.
 * @param y Ordinates.
 * @return Fitted slope, intercept and R^2.
 */
[[nodiscard]]
LineFit fitLine(const std::vector<double> &x, const std::vector<double> &y);

} // namespace atmsim::util
