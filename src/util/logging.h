/**
 * @file
 * Logging and error-reporting facilities.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user errors that prevent
 * the simulation from continuing, warn() flags questionable conditions,
 * and inform() reports normal status.
 */

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace atmsim::util {

/** Severity levels for log messages, in increasing order of urgency. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Set the minimum severity that is emitted to stderr.
 *
 * @param level Messages below this level are suppressed.
 */
void setLogLevel(LogLevel level);

/** @return The current minimum emitted severity. */
LogLevel logLevel();

/**
 * Emit a log record. Normally called through the convenience wrappers
 * below rather than directly.
 *
 * @param level Severity of the record.
 * @param msg Preformatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report a normal-operation status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Info, detail::concat(args...));
}

/** Report a low-level diagnostic message. */
template <typename... Args>
void
debug(const Args &...args)
{
    logMessage(LogLevel::Debug, detail::concat(args...));
}

/**
 * Report a condition that is not necessarily wrong but deserves the
 * user's attention.
 */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, detail::concat(args...));
}

/** Terminate: implementation helpers (throw so tests can observe). */
[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void panicImpl(const std::string &msg);

/**
 * Abort the simulation due to a user error (bad configuration, invalid
 * arguments). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    fatalImpl(detail::concat(args...));
}

/**
 * Abort the simulation due to an internal inconsistency that should
 * never happen regardless of user input. Throws PanicError.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    panicImpl(detail::concat(args...));
}

/** Exception thrown by fatal(). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

} // namespace atmsim::util
