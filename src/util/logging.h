/**
 * @file
 * Logging and error-reporting facilities.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user errors that prevent
 * the simulation from continuing, warn() flags questionable conditions,
 * and inform() reports normal status.
 */

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace atmsim::util {

/** Severity levels for log messages, in increasing order of urgency. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Set the minimum severity that is emitted to stderr.
 *
 * @param level Messages below this level are suppressed.
 */
void setLogLevel(LogLevel level);

/** @return The current minimum emitted severity. */
[[nodiscard]] LogLevel logLevel();

/**
 * Emit a log record. Normally called through the convenience wrappers
 * below rather than directly.
 *
 * @param level Severity of the record.
 * @param msg Preformatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Pluggable log destination. The default sink writes timestamped
 * lines to stderr; tests install a CaptureLogSink to assert on
 * emitted warnings without scraping process output.
 */
class LogSink
{
  public:
    virtual ~LogSink() = default;

    /**
     * Receive one record that passed the level filter.
     *
     * @param level Severity of the record.
     * @param msg Message body (no level tag, no timestamp).
     */
    virtual void write(LogLevel level, const std::string &msg) = 0;
};

/**
 * Install a sink (not owned; must outlive its installation). Pass
 * nullptr to restore the default timestamped-stderr sink.
 */
void setLogSink(LogSink *sink);

/**
 * Attach a run-context string (e.g. a bench run id or seed) that the
 * default sink prepends to every line, so interleaved campaign logs
 * stay attributable. Empty clears the context.
 */
void setLogContext(const std::string &context);

/** Currently attached run context. */
[[nodiscard]] std::string logContext();

/** Sink that buffers records in memory (for tests). */
class CaptureLogSink : public LogSink
{
  public:
    struct Record
    {
        LogLevel level;
        std::string msg;
    };

    void write(LogLevel level, const std::string &msg) override
    {
        records_.push_back({level, msg});
    }

    [[nodiscard]]
    const std::vector<Record> &records() const { return records_; }
    void clear() { records_.clear(); }

    /** Number of buffered records containing a substring. */
    [[nodiscard]] std::size_t
    countContaining(const std::string &needle) const
    {
        std::size_t hits = 0;
        for (const Record &rec : records_) {
            if (rec.msg.find(needle) != std::string::npos)
                ++hits;
        }
        return hits;
    }

  private:
    std::vector<Record> records_;
};

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
[[nodiscard]] std::string
concat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report a normal-operation status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Info, detail::concat(args...));
}

/** Report a low-level diagnostic message. */
template <typename... Args>
void
debug(const Args &...args)
{
    logMessage(LogLevel::Debug, detail::concat(args...));
}

/**
 * Report a condition that is not necessarily wrong but deserves the
 * user's attention.
 */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, detail::concat(args...));
}

/** warnOnce implementation helper: true the first time a key is seen. */
[[nodiscard]] bool warnOnceArm(const std::string &key);

/** Forget all warnOnce keys (tests). */
void resetWarnOnce();

/**
 * Emit a warning at most once per unique key for the process
 * lifetime. Use for conditions that would otherwise print once per
 * step or per run in a large campaign.
 *
 * @param key Dedup key (conventionally "subsystem.condition").
 */
template <typename... Args>
void
warnOnce(const std::string &key, const Args &...args)
{
    if (warnOnceArm(key))
        logMessage(LogLevel::Warn, detail::concat(args...));
}

/**
 * Rate-limited warning channel for per-step conditions inside hot
 * loops: the first `limit` calls emit normally, everything after is
 * counted instead of printed, and flush() reports the suppressed
 * total. Cheap enough to live in an engine run (one branch and an
 * increment once the limit is hit).
 */
class WarnThrottle
{
  public:
    /**
     * @param tag Prefix identifying the channel in emitted lines.
     * @param limit Warnings emitted before suppression starts.
     */
    explicit WarnThrottle(std::string tag, long limit = 5)
        : tag_(std::move(tag)), limit_(limit)
    {
    }

    /** Flushes on destruction so no suppression count is lost. */
    ~WarnThrottle() { flush(); }

    WarnThrottle(const WarnThrottle &) = delete;
    WarnThrottle &operator=(const WarnThrottle &) = delete;

    template <typename... Args>
    void
    warn(const Args &...args)
    {
        ++total_;
        if (total_ > limit_)
            return;
        logMessage(LogLevel::Warn,
                   tag_ + ": " + detail::concat(args...)
                       + (total_ == limit_
                              ? " (limit reached; further occurrences"
                                " counted silently)"
                              : ""));
    }

    /** Calls made so far (emitted + suppressed). */
    [[nodiscard]] long total() const { return total_; }

    /** Calls suppressed beyond the limit. */
    [[nodiscard]] long suppressed() const
    {
        return total_ > limit_ ? total_ - limit_ : 0;
    }

    /** Report and reset the suppressed count, if any. */
    void
    flush()
    {
        if (suppressed() > 0) {
            logMessage(LogLevel::Warn,
                       tag_ + ": " + detail::concat(suppressed())
                           + " further occurrence(s) suppressed");
        }
        total_ = 0;
    }

  private:
    std::string tag_;
    long limit_;
    long total_ = 0;
};

/** Terminate: implementation helpers (throw so tests can observe). */
[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void panicImpl(const std::string &msg);

/**
 * Abort the simulation due to a user error (bad configuration, invalid
 * arguments). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    fatalImpl(detail::concat(args...));
}

/**
 * Abort the simulation due to an internal inconsistency that should
 * never happen regardless of user input. Throws PanicError.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    panicImpl(detail::concat(args...));
}

/** Exception thrown by fatal(). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

} // namespace atmsim::util
