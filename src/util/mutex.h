/**
 * @file
 * Annotated mutex and RAII lock.
 *
 * std::mutex from libstdc++ carries no thread-safety-analysis
 * attributes, so locking it tells clang's `-Wthread-safety` nothing.
 * util::Mutex is a zero-cost wrapper that adds the `capability`
 * annotations; util::MutexLock is the annotated lock_guard
 * equivalent. Shared-state classes (obs::MetricsRegistry,
 * obs::TraceCollector, the logging globals) use these so the
 * analysis can prove ATM_GUARDED_BY contracts.
 */

#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace atmsim::util {

/** std::mutex with clang capability annotations. */
class ATM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ATM_ACQUIRE() { m_.lock(); }
    void unlock() ATM_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool tryLock() ATM_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    std::mutex m_;
};

/**
 * Condition variable waiting directly on util::Mutex.
 *
 * std::condition_variable only accepts std::unique_lock, which the
 * thread-safety analysis cannot see through; condition_variable_any
 * takes any BasicLockable, so waiting on the annotated Mutex keeps
 * the ATM_GUARDED_BY proofs intact. There is deliberately no
 * predicate overload: callers write the `while (!ready) cv.wait(mu)`
 * loop at the call site, where the analysis can verify the guarded
 * reads in the condition.
 */
class ConditionVariable
{
  public:
    ConditionVariable() = default;
    ConditionVariable(const ConditionVariable &) = delete;
    ConditionVariable &operator=(const ConditionVariable &) = delete;

    /** Atomically release `mu` and sleep; `mu` is held again on
     *  return. Spurious wakeups happen: always wait in a loop. */
    void wait(Mutex &mu) ATM_REQUIRES(mu) { cv_.wait(mu); }

    /** Wake one / every waiter. The associated mutex need not be
     *  held, but the state change the waiters test must already be
     *  published under it. */
    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

/** Tag type selecting MutexLock's adopting constructor. */
struct AdoptLock
{
};

/** Annotated scope lock (lock_guard equivalent). */
class ATM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ATM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    /**
     * Adopt a mutex the caller already holds (typically after a
     * successful tryLock()), releasing it on scope exit. Keeps
     * try-lock paths exception-safe without a manual unlock.
     */
    MutexLock(Mutex &mu, AdoptLock) ATM_REQUIRES(mu) : mu_(mu) {}

    ~MutexLock() ATM_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

} // namespace atmsim::util
