/**
 * @file
 * Annotated mutex and RAII lock.
 *
 * std::mutex from libstdc++ carries no thread-safety-analysis
 * attributes, so locking it tells clang's `-Wthread-safety` nothing.
 * util::Mutex is a zero-cost wrapper that adds the `capability`
 * annotations; util::MutexLock is the annotated lock_guard
 * equivalent. Shared-state classes (obs::MetricsRegistry,
 * obs::TraceCollector, the logging globals) use these so the
 * analysis can prove ATM_GUARDED_BY contracts.
 */

#pragma once

#include <mutex>

#include "util/thread_annotations.h"

namespace atmsim::util {

/** std::mutex with clang capability annotations. */
class ATM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ATM_ACQUIRE() { m_.lock(); }
    void unlock() ATM_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool tryLock() ATM_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    std::mutex m_;
};

/** Annotated scope lock (lock_guard equivalent). */
class ATM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ATM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() ATM_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

} // namespace atmsim::util
