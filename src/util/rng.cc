#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace atmsim::util {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : origin_(seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::u64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 bits of mantissa.
    return static_cast<double>(u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::below(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -n % n;
    for (;;) {
        std::uint64_t r = u64();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    if (haveCached_) {
        haveCached_ = false;
        return cached_;
    }
    // Box-Muller transform.
    double u1 = 0.0;
    // atmlint: allow(float-equality) -- rejection sampling: log(u1)
    // needs u1 strictly above exactly 0.0, which uniform() can emit.
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = radius * std::sin(theta);
    haveCached_ = true;
    return radius * std::cos(theta);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        fatal("exponential rate must be positive, got ", rate);
    double u = 0.0;
    // atmlint: allow(float-equality) -- rejection sampling, as in
    // gaussian(): log(u) requires u != exact 0.0.
    while (u == 0.0)
        u = uniform();
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Derive a child seed from the origin seed and the stream id so
    // that forking is independent of this stream's consumption state.
    std::uint64_t mix = origin_ ^ (0xd1342543de82ef95ULL * (stream_id + 1));
    return Rng(splitMix64(mix));
}

VanDerCorput::VanDerCorput(std::uint64_t scramble) : scramble_(scramble) {}

double
VanDerCorput::at(std::uint64_t index) const
{
    // Bit-reverse the index and scale into [0, 1).
    std::uint64_t bits = index + 1; // skip the degenerate 0 -> 0.0 mapping
    std::uint64_t reversed = 0;
    for (int i = 0; i < 64; ++i) {
        reversed = (reversed << 1) | (bits & 1);
        bits >>= 1;
    }
    reversed ^= scramble_;
    return static_cast<double>(reversed >> 11) * 0x1.0p-53;
}

double
VanDerCorput::next()
{
    return at(index_++);
}

} // namespace atmsim::util
