#include "util/json_writer.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace atmsim::util {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                std::array<char, 8> buf{};
                std::snprintf(buf.data(), buf.size(), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf.data();
            } else {
                out += ch;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

JsonWriter::~JsonWriter()
{
    // A destructor must not throw; an unbalanced writer is a
    // programming error that the nearest test will surface through
    // the malformed document instead.
}

void
JsonWriter::prepareValue()
{
    if (!stack_.empty() && stack_.back() == Frame::Object && !keyPending_)
        panic("JSON writer: value inside an object needs a key");
    if (!stack_.empty() && stack_.back() == Frame::Array
        && !firstInFrame_) {
        os_ << ',';
    }
    firstInFrame_ = false;
    keyPending_ = false;
}

void
JsonWriter::prepareKey()
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        panic("JSON writer: key outside an object");
    if (keyPending_)
        panic("JSON writer: two keys in a row");
    if (!firstInFrame_)
        os_ << ',';
    firstInFrame_ = false;
    keyPending_ = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    stack_.push_back(Frame::Object);
    firstInFrame_ = true;
    os_ << '{';
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object)
        panic("JSON writer: endObject without beginObject");
    if (keyPending_)
        panic("JSON writer: object closed with a dangling key");
    stack_.pop_back();
    firstInFrame_ = false;
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    stack_.push_back(Frame::Array);
    firstInFrame_ = true;
    os_ << '[';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        panic("JSON writer: endArray without beginArray");
    stack_.pop_back();
    firstInFrame_ = false;
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    prepareKey();
    os_ << '"' << jsonEscape(name) << "\":";
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    prepareValue();
    os_ << '"' << jsonEscape(text) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string_view(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    prepareValue();
    if (!std::isfinite(number)) {
        // JSON has no NaN/Inf; null keeps the document parseable.
        os_ << "null";
        return *this;
    }
    // Shortest round-trip representation, locale-independent.
    std::array<char, 32> buf{};
    const auto res =
        std::to_chars(buf.data(), buf.data() + buf.size(), number);
    os_.write(buf.data(), res.ptr - buf.data());
    return *this;
}

JsonWriter &
JsonWriter::value(long number)
{
    prepareValue();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    prepareValue();
    os_ << number;
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<long>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    prepareValue();
    os_ << (flag ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    prepareValue();
    os_ << "null";
    return *this;
}

} // namespace atmsim::util
