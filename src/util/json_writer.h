/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The observability layer emits three machine-readable artifacts --
 * metric snapshots, Chrome-trace event streams, and run-provenance
 * manifests -- and all three need correct string escaping and stable
 * number formatting without pulling in an external JSON dependency.
 * The writer is a thin state machine over an std::ostream: callers
 * open objects/arrays, emit keys and values, and the writer inserts
 * commas; nesting errors are caught with util::panic in debug-style
 * fashion rather than producing silently malformed output.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace atmsim::util {

/** Escape a string for inclusion in a JSON document (no quotes). */
[[nodiscard]] std::string jsonEscape(std::string_view text);

/** Streaming JSON emitter with comma/nesting bookkeeping. */
class JsonWriter
{
  public:
    /** @param os Destination stream (not owned). */
    explicit JsonWriter(std::ostream &os);

    /** All containers opened must be closed before destruction. */
    ~JsonWriter();

    // --- Containers ----------------------------------------------------

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit a key inside an object; the next value binds to it. */
    JsonWriter &key(std::string_view name);

    // --- Values --------------------------------------------------------

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(long number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);
    JsonWriter &nullValue();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view name, T v)
    {
        key(name);
        return value(v);
    }

    /** Depth of currently open containers. */
    [[nodiscard]] std::size_t depth() const { return stack_.size(); }

  private:
    enum class Frame { Object, Array };

    /** Emit separators/indentation before a key or value. */
    void prepareValue();
    void prepareKey();

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool firstInFrame_ = true;
    bool keyPending_ = false;
};

} // namespace atmsim::util
