/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * The fleet campaign layer re-reads artifacts the repo itself writes
 * with util::JsonWriter -- checkpoints, worker result messages,
 * serialized metric snapshots -- so it needs a parser with the same
 * zero-dependency footprint as the writer. The parser builds an
 * immutable JsonValue tree; objects are stored as sorted maps so
 * iteration order (and therefore everything re-serialized from a
 * parsed document) is deterministic.
 *
 * Untrusted input is the normal case (a checkpoint file may be
 * truncated mid-write or corrupted on disk), so every malformed
 * construct throws JsonParseError with a position diagnostic instead
 * of invoking undefined behavior, and nesting depth is capped so a
 * garbage file cannot overflow the parse stack. Type-mismatched
 * access on a parsed value throws JsonTypeError.
 */

#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace atmsim::util {

/** Malformed JSON text (syntax, truncation, depth). */
class JsonParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Well-formed JSON accessed as the wrong type. */
class JsonTypeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One node of a parsed JSON document. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Parsed children of an object, sorted by key (last dup wins). */
    using Object = std::map<std::string, JsonValue, std::less<>>;

    /** Elements of an array, in document order. */
    using Array = std::vector<JsonValue>;

    /** Defaults to null. */
    JsonValue() = default;

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
    [[nodiscard]] bool isBool() const { return kind_ == Kind::Bool; }
    [[nodiscard]] bool isNumber() const { return kind_ == Kind::Number; }
    [[nodiscard]] bool isString() const { return kind_ == Kind::String; }
    [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
    [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }

    // --- Typed access (JsonTypeError on mismatch) ----------------------

    [[nodiscard]] bool asBool() const;

    /** Number as double (exact round-trip of JsonWriter output). */
    [[nodiscard]] double asDouble() const;

    /**
     * Number as integer. Exact for anything written from long /
     * uint64 by JsonWriter; throws when the value has a fractional
     * part or does not fit.
     */
    [[nodiscard]] long long asLong() const;

    [[nodiscard]] const std::string &asString() const;
    [[nodiscard]] const Array &asArray() const;
    [[nodiscard]] const Object &asObject() const;

    // --- Object conveniences -------------------------------------------

    /** Member lookup; nullptr when absent (object required). */
    [[nodiscard]] const JsonValue *find(std::string_view key) const;

    /** Member lookup; JsonTypeError when absent. */
    [[nodiscard]] const JsonValue &at(std::string_view key) const;

    /** True when the object has the member. */
    [[nodiscard]] bool contains(std::string_view key) const;

    /**
     * Parse one complete JSON document; trailing non-whitespace is an
     * error. @throws JsonParseError on malformed input.
     */
    [[nodiscard]] static JsonValue parse(std::string_view text);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    bool numberIsInt_ = false;
    long long intNumber_ = 0;
    std::string string_;
    Array array_;
    Object object_;
};

} // namespace atmsim::util
