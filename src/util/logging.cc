#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <unordered_set>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace atmsim::util {

namespace {

Mutex g_mutex;
// Read on every logMessage() call without the lock; atomic so the
// hot-path filter stays lock-free.
std::atomic<LogLevel> g_level{LogLevel::Warn};
LogSink *g_sink ATM_GUARDED_BY(g_mutex) = nullptr;
std::string g_context ATM_GUARDED_BY(g_mutex);
std::unordered_set<std::string> g_warned_keys
    ATM_GUARDED_BY(g_mutex);

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

/** UTC wall-clock timestamp for the default stderr sink. */
std::string
wallTimestamp()
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto millis =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count()
        % 1000;
    std::tm tm_utc{};
    gmtime_r(&secs, &tm_utc);
    char buf[40];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm_utc.tm_year + 1900, tm_utc.tm_mon + 1,
                  tm_utc.tm_mday, tm_utc.tm_hour, tm_utc.tm_min,
                  tm_utc.tm_sec, static_cast<int>(millis));
    return buf;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogSink(LogSink *sink)
{
    MutexLock lock(g_mutex);
    g_sink = sink;
}

void
setLogContext(const std::string &context)
{
    MutexLock lock(g_mutex);
    g_context = context;
}

std::string
logContext()
{
    MutexLock lock(g_mutex);
    return g_context;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < g_level.load(std::memory_order_relaxed))
        return;
    MutexLock lock(g_mutex);
    if (g_sink) {
        g_sink->write(level, msg);
        return;
    }
    std::cerr << "[" << levelTag(level) << " " << wallTimestamp()
              << "] ";
    if (!g_context.empty())
        std::cerr << g_context << " | ";
    std::cerr << msg << "\n";
}

bool
warnOnceArm(const std::string &key)
{
    MutexLock lock(g_mutex);
    return g_warned_keys.insert(key).second;
}

void
resetWarnOnce()
{
    MutexLock lock(g_mutex);
    g_warned_keys.clear();
}

void
fatalImpl(const std::string &msg)
{
    logMessage(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panicImpl(const std::string &msg)
{
    logMessage(LogLevel::Error, "panic: " + msg);
    throw PanicError(msg);
}

} // namespace atmsim::util
