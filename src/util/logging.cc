#include "util/logging.h"

#include <iostream>
#include <mutex>

namespace atmsim::util {

namespace {

LogLevel g_level = LogLevel::Warn;
std::mutex g_mutex;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < g_level)
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::cerr << "[" << levelTag(level) << "] " << msg << "\n";
}

void
fatalImpl(const std::string &msg)
{
    logMessage(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panicImpl(const std::string &msg)
{
    logMessage(LogLevel::Error, "panic: " + msg);
    throw PanicError(msg);
}

} // namespace atmsim::util
