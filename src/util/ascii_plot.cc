#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace atmsim::util {

AsciiPlot::AsciiPlot(int width, int height) : width_(width), height_(height)
{
    if (width_ < 10 || height_ < 4)
        fatal("AsciiPlot dimensions too small: ", width_, "x", height_);
}

void
AsciiPlot::addSeries(const std::string &name, const std::vector<double> &x,
                     const std::vector<double> &y, char glyph)
{
    if (x.size() != y.size())
        fatal("AsciiPlot series '", name, "': x/y size mismatch");
    series_.push_back({name, x, y, glyph});
}

void
AsciiPlot::setLabels(const std::string &x_label, const std::string &y_label)
{
    xLabel_ = x_label;
    yLabel_ = y_label;
}

void
AsciiPlot::print(std::ostream &os) const
{
    double xmin = std::numeric_limits<double>::infinity();
    double xmax = -xmin, ymin = xmin, ymax = -xmin;
    bool any = false;
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            xmin = std::min(xmin, s.x[i]);
            xmax = std::max(xmax, s.x[i]);
            ymin = std::min(ymin, s.y[i]);
            ymax = std::max(ymax, s.y[i]);
            any = true;
        }
    }
    if (!any) {
        os << "(empty plot)\n";
        return;
    }
    // atmlint: allow(float-equality) -- exact degenerate-range guard;
    // near-equal ranges plot fine, only bit-equal ones divide by 0.
    if (xmax == xmin)
        xmax = xmin + 1.0;
    // atmlint: allow(float-equality) -- same exact guard for y.
    if (ymax == ymin)
        ymax = ymin + 1.0;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            const int col = static_cast<int>(
                std::lround((s.x[i] - xmin) / (xmax - xmin) * (width_ - 1)));
            const int row = static_cast<int>(
                std::lround((s.y[i] - ymin) / (ymax - ymin) * (height_ - 1)));
            grid[height_ - 1 - row][col] = s.glyph;
        }
    }

    std::ostringstream top, bottom;
    top << std::setprecision(4) << ymax;
    bottom << std::setprecision(4) << ymin;
    const std::size_t margin = std::max(top.str().size(),
                                        bottom.str().size()) + 1;

    if (!yLabel_.empty())
        os << std::string(margin, ' ') << yLabel_ << "\n";
    for (int r = 0; r < height_; ++r) {
        std::string label;
        if (r == 0)
            label = top.str();
        else if (r == height_ - 1)
            label = bottom.str();
        os << std::setw(static_cast<int>(margin)) << label << '|'
           << grid[r] << "\n";
    }
    os << std::string(margin, ' ') << '+' << std::string(width_, '-') << "\n";
    std::ostringstream xlo, xhi;
    xlo << std::setprecision(4) << xmin;
    xhi << std::setprecision(4) << xmax;
    std::string axis = xlo.str();
    const std::string right = xhi.str() + (xLabel_.empty()
                                           ? std::string()
                                           : "  " + xLabel_);
    const int pad = width_ - static_cast<int>(axis.size())
                    - static_cast<int>(right.size());
    axis += std::string(std::max(pad, 1), ' ') + right;
    os << std::string(margin, ' ') << ' ' << axis << "\n";
    for (const auto &s : series_)
        os << std::string(margin, ' ') << ' ' << s.glyph << " = "
           << s.name << "\n";
}

} // namespace atmsim::util
