/**
 * @file
 * Unit conversion helpers and common physical constants.
 *
 * All simulator-internal quantities use a consistent set of units:
 * time in picoseconds (circuit level) or nanoseconds (system level),
 * frequency in MHz, voltage in volts, power in watts, temperature in
 * degrees Celsius.
 */

#pragma once

namespace atmsim::util {

/** Convert a frequency in MHz to a clock period in picoseconds. */
[[nodiscard]] constexpr double
mhzToPs(double mhz)
{
    return 1.0e6 / mhz;
}

/** Convert a clock period in picoseconds to a frequency in MHz. */
[[nodiscard]] constexpr double
psToMhz(double ps)
{
    return 1.0e6 / ps;
}

/** Convert GHz to MHz. */
[[nodiscard]] constexpr double
ghzToMhz(double ghz)
{
    return ghz * 1000.0;
}

/** Convert MHz to GHz. */
[[nodiscard]] constexpr double
mhzToGhz(double mhz)
{
    return mhz / 1000.0;
}

/** Convert millivolts to volts. */
[[nodiscard]] constexpr double
mvToV(double mv)
{
    return mv * 1.0e-3;
}

/** Convert volts to millivolts. */
[[nodiscard]] constexpr double
vToMv(double v)
{
    return v * 1.0e3;
}

/** Convert nanoseconds to picoseconds. */
[[nodiscard]] constexpr double
nsToPs(double ns)
{
    return ns * 1.0e3;
}

/** Convert picoseconds to nanoseconds. */
[[nodiscard]] constexpr double
psToNs(double ps)
{
    return ps * 1.0e-3;
}

/** Convert microseconds to nanoseconds. */
[[nodiscard]] constexpr double
usToNs(double us)
{
    return us * 1.0e3;
}

} // namespace atmsim::util
