#include "workload/activity.h"

#include <cmath>

#include "util/logging.h"

namespace atmsim::workload {

ActivityGenerator::ActivityGenerator(const WorkloadTraits *traits,
                                     double event_current_a, util::Rng rng)
    : traits_(traits), eventCurrentA_(event_current_a), rng_(std::move(rng))
{
    if (!traits)
        util::panic("ActivityGenerator constructed with null traits");
    if (event_current_a < 0.0)
        util::fatal("negative event current ", event_current_a);
    synchronized_ = traits_->stress == StressClass::Virus;
    if (synchronized_) {
        // The virus throttles issue 1 cycle in 128: a ~27 ns square
        // wave at ATM frequencies, phase-aligned across cores.
        pulseWidthNs_ = 13.5;
        nextEventNs_ = 0.0;
    } else if (traits_->eventsPerUs > 0.0) {
        scheduleNext(0.0);
    } else {
        nextEventNs_ = 1e30;
    }
}

void
ActivityGenerator::scheduleNext(double after_ns)
{
    const double gap_ns =
        rng_.exponential(traits_->eventsPerUs / 1000.0);
    nextEventNs_ = after_ns + gap_ns;
}

double
ActivityGenerator::transientCurrentA(double now_ns)
{
    const double ramp = std::min(now_ns / kRampNs, 1.0)
                      * traits_->phaseDroopScale(now_ns * 1e-3);
    if (synchronized_) {
        // Fixed-phase square wave: high half, low half.
        const double period = 2.0 * pulseWidthNs_;
        const double phase = std::fmod(now_ns, period);
        return phase < pulseWidthNs_ ? eventCurrentA_ * ramp : 0.0;
    }
    if (now_ns >= nextEventNs_ && pulseEndNs_ < now_ns) {
        pulseEndNs_ = now_ns + pulseWidthNs_;
        scheduleNext(pulseEndNs_);
    }
    return now_ns < pulseEndNs_ ? eventCurrentA_ * ramp : 0.0;
}

} // namespace atmsim::workload
