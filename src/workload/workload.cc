#include "workload/workload.h"

#include <array>
#include <cmath>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::workload {

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Idle: return "idle";
      case Suite::UBench: return "uBench";
      case Suite::SpecCpu2017: return "SPEC CPU2017";
      case Suite::Parsec: return "PARSEC";
      case Suite::DnnInference: return "DNN inference";
      case Suite::Stressmark: return "stressmark";
    }
    return "?";
}

const char *
roleName(Role role)
{
    switch (role) {
      case Role::Critical: return "critical";
      case Role::Background: return "background";
      case Role::None: return "unclassified";
    }
    return "?";
}

const char *
stressClassName(StressClass cls)
{
    switch (cls) {
      case StressClass::Calm: return "calm";
      case StressClass::Light: return "light";
      case StressClass::Medium: return "medium";
      case StressClass::Heavy: return "heavy";
      case StressClass::Virus: return "virus";
    }
    return "?";
}

double
WorkloadTraits::coreActivityW(int threads) const
{
    if (threads < 0 || threads > circuit::kSmtWays)
        util::fatal("thread count ", threads, " outside SMT capability");
    // Cumulative SMT throughput scaling: diminishing returns.
    static constexpr std::array<double, 5> smt_scale =
        {0.0, 1.0, 1.8, 2.5, 3.1};
    return activityWPerThread * smt_scale[static_cast<std::size_t>(threads)];
}

double
WorkloadTraits::perfRelative(double f_mhz) const
{
    if (f_mhz <= 0.0)
        util::fatal("perfRelative: non-positive frequency ", f_mhz);
    const double fr = circuit::kStaticMarginMhz.value() / f_mhz;
    return 1.0 / ((1.0 - memBoundFrac) * fr + memBoundFrac);
}

double
WorkloadTraits::latencyMs(double f_mhz) const
{
    if (baselineLatencyMs <= 0.0)
        util::fatal("workload '", name, "' has no latency metric");
    return baselineLatencyMs / perfRelative(f_mhz);
}

const WorkloadPhase *
WorkloadTraits::phaseAt(double now_us) const
{
    if (phases.empty())
        return nullptr;
    double cycle = 0.0;
    for (const auto &phase : phases)
        cycle += phase.durationUs;
    double t = std::fmod(now_us, cycle);
    for (const auto &phase : phases) {
        if (t < phase.durationUs)
            return &phase;
        t -= phase.durationUs;
    }
    return &phases.back();
}

double
WorkloadTraits::phaseActivityScale(double now_us) const
{
    const WorkloadPhase *phase = phaseAt(now_us);
    return phase ? phase->activityScale : 1.0;
}

double
WorkloadTraits::phaseDroopScale(double now_us) const
{
    const WorkloadPhase *phase = phaseAt(now_us);
    return phase ? phase->droopScale : 1.0;
}

double
WorkloadTraits::avgActivityScale() const
{
    if (phases.empty())
        return 1.0;
    double total = 0.0, weighted = 0.0;
    for (const auto &phase : phases) {
        total += phase.durationUs;
        weighted += phase.durationUs * phase.activityScale;
    }
    return weighted / total;
}

void
WorkloadTraits::validate() const
{
    if (name.empty())
        util::fatal("workload has no name");
    if (memBoundFrac < 0.0 || memBoundFrac > 0.95)
        util::fatal("workload ", name, ": memBoundFrac ", memBoundFrac,
                    " outside [0, 0.95]");
    if (activityWPerThread < 0.0 || activityWPerThread > 25.0)
        util::fatal("workload ", name, ": implausible activity ",
                    activityWPerThread, " W");
    if (droopMv < 0.0 || droopMv > 80.0)
        util::fatal("workload ", name, ": implausible droop ", droopMv);
    if (eventsPerUs < 0.0)
        util::fatal("workload ", name, ": negative event rate");
    if (defaultThreads < 1 || defaultThreads > circuit::kSmtWays)
        util::fatal("workload ", name, ": bad thread count ",
                    defaultThreads);
    for (const auto &phase : phases) {
        if (phase.durationUs <= 0.0)
            util::fatal("workload ", name, ": non-positive phase");
        if (phase.activityScale < 0.0 || phase.activityScale > 2.0)
            util::fatal("workload ", name, ": implausible phase "
                        "activity scale ", phase.activityScale);
        // The quoted droop is the worst phase: scales stay <= 1.
        if (phase.droopScale < 0.0 || phase.droopScale > 1.0)
            util::fatal("workload ", name, ": phase droop scale ",
                        phase.droopScale, " outside [0, 1]");
    }
    if (!phases.empty()) {
        // Time-averaged activity must match the quoted level so the
        // analytic power model stays calibrated.
        const double avg = avgActivityScale();
        if (avg < 0.9 || avg > 1.1)
            util::fatal("workload ", name, ": phase activity scales "
                        "average to ", avg, ", outside [0.9, 1.1]");
        bool has_worst = false;
        for (const auto &phase : phases) {
            if (phase.droopScale >= 0.999)
                has_worst = true;
        }
        if (!has_worst)
            util::fatal("workload ", name, ": no phase carries the "
                        "quoted (worst) droop");
    }
}

} // namespace atmsim::workload
