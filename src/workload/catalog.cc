#include "workload/catalog.h"

#include <algorithm>

#include "util/logging.h"
#include "variation/calibration.h"

namespace atmsim::workload {

namespace {

/** Shorthand builder. */
WorkloadTraits
make(const std::string &name, Suite suite, Role role, StressClass stress,
     bool mem_intensive, double mem_frac, double activity_w,
     double droop_mv, double events_per_us, double latency_ms = 0.0,
     int threads = 1)
{
    WorkloadTraits w;
    w.name = name;
    w.suite = suite;
    w.role = role;
    w.stress = stress;
    w.memIntensive = mem_intensive;
    w.memBoundFrac = mem_frac;
    w.activityWPerThread = activity_w;
    w.droopMv = droop_mv;
    w.eventsPerUs = events_per_us;
    w.baselineLatencyMs = latency_ms;
    w.defaultThreads = threads;
    w.validate();
    return w;
}

std::vector<WorkloadTraits>
buildCatalog()
{
    using S = Suite;
    using R = Role;
    using C = StressClass;
    std::vector<WorkloadTraits> v;

    // Pseudo-workload: system idle (background OS tasks only).
    v.push_back(make("idle", S::Idle, R::None, C::Calm, false, 0.0, 0.0,
                     0.0, 0.05));

    // --- uBench (Sec. V-A): smooth, module-focused programs with
    // little di/dt activity.
    v.push_back(make("coremark", S::UBench, R::None, C::Calm, false, 0.02,
                     8.0, 3.0, 0.2));
    v.push_back(make("daxpy", S::UBench, R::None, C::Calm, false, 0.10,
                     3.8, 3.0, 0.2, 0.0, 4));
    v.push_back(make("stream", S::UBench, R::None, C::Calm, true, 0.70,
                     9.0, 3.0, 0.2));

    // --- SPEC CPU2017 (single-threaded rate runs).
    v.push_back(make("gcc", S::SpecCpu2017, R::Background, C::Light, true,
                     0.30, 7.5, 8.0, 0.8));
    v.push_back(make("mcf", S::SpecCpu2017, R::None, C::Light, true,
                     0.55, 6.5, 10.0, 0.6));
    {
        // x264 alternates heavy frame-encode regions (the worst-droop
        // phase) with lighter bitstream packing.
        WorkloadTraits x264 = make("x264", S::SpecCpu2017,
                                   R::Background, C::Heavy, false, 0.05,
                                   11.0, 55.0, 1.8);
        x264.phases = {{0.5, 1.12, 1.0}, {0.7, 0.91, 0.55}};
        x264.validate();
        v.push_back(std::move(x264));
    }
    v.push_back(make("leela", S::SpecCpu2017, R::None, C::Light, false,
                     0.10, 7.0, 7.0, 0.5));
    v.push_back(make("exchange2", S::SpecCpu2017, R::None, C::Light, false,
                     0.02, 8.0, 6.0, 0.4));
    v.push_back(make("deepsjeng", S::SpecCpu2017, R::None, C::Light, false,
                     0.15, 7.5, 8.0, 0.6));
    v.push_back(make("xz", S::SpecCpu2017, R::None, C::Light, true,
                     0.35, 7.0, 9.0, 0.7));
    v.push_back(make("nab", S::SpecCpu2017, R::None, C::Light, false,
                     0.12, 8.5, 9.0, 0.6));
    v.push_back(make("namd", S::SpecCpu2017, R::None, C::Medium, false,
                     0.08, 9.5, 11.0, 0.8));

    // --- PARSEC 3.0.
    {
        // ferret's pipeline stages (extract / index / rank) create a
        // three-phase activity pattern.
        WorkloadTraits ferret = make("ferret", S::Parsec, R::Critical,
                                     C::Heavy, true, 0.35, 10.5, 48.0,
                                     1.6, 55.0);
        ferret.phases = {{0.4, 1.10, 1.0}, {0.3, 1.00, 0.7},
                         {0.5, 0.92, 0.5}};
        ferret.validate();
        v.push_back(std::move(ferret));
    }
    v.push_back(make("fluidanimate", S::Parsec, R::Critical, C::Heavy, true,
                     0.32, 10.0, 40.0, 1.4, 40.0));
    v.push_back(make("facesim", S::Parsec, R::Background, C::Heavy, true,
                     0.35, 9.5, 28.0, 1.2));
    v.push_back(make("blackscholes", S::Parsec, R::Background, C::Light,
                     false, 0.05, 8.0, 9.0, 0.5));
    v.push_back(make("swaptions", S::Parsec, R::Background, C::Medium,
                     false, 0.05, 8.5, 10.0, 0.6));
    v.push_back(make("bodytrack", S::Parsec, R::Critical, C::Medium, false,
                     0.15, 9.0, 12.0, 0.9, 33.0));
    v.push_back(make("streamcluster", S::Parsec, R::Background, C::Light,
                     true, 0.45, 4.5, 8.0, 0.5));
    v.push_back(make("raytrace", S::Parsec, R::Background, C::Light, false,
                     0.15, 7.5, 9.0, 0.5));
    v.push_back(make("vips", S::Parsec, R::Critical, C::Medium, false,
                     0.15, 9.0, 11.0, 0.8, 28.0));
    v.push_back(make("canneal", S::Parsec, R::None, C::Light, true,
                     0.50, 6.0, 10.0, 0.6));
    v.push_back(make("freqmine", S::Parsec, R::None, C::Light, false,
                     0.25, 8.0, 9.0, 0.6));
    v.push_back(make("lu_cb", S::Parsec, R::Background, C::Medium, true,
                     0.30, 10.5, 11.0, 0.8));

    // --- DNN inference / ML (Table II critical and background rows).
    v.push_back(make("squeezenet", S::DnnInference, R::Critical, C::Medium,
                     false, 0.10, 9.0, 11.0, 0.8, 80.0));
    v.push_back(make("resnet", S::DnnInference, R::Critical, C::Medium,
                     true, 0.32, 10.0, 12.0, 0.9, 120.0));
    v.push_back(make("vgg19", S::DnnInference, R::Critical, C::Medium,
                     true, 0.32, 10.5, 12.0, 0.9, 180.0));
    v.push_back(make("seq2seq", S::DnnInference, R::Critical, C::Light,
                     false, 0.15, 8.0, 9.0, 0.6, 45.0));
    v.push_back(make("babi", S::DnnInference, R::Critical, C::Light, false,
                     0.10, 7.0, 8.0, 0.5, 30.0));
    v.push_back(make("mlp", S::DnnInference, R::Background, C::Medium, true,
                     0.30, 10.0, 11.0, 0.8));

    // --- Test-time stressmarks (Sec. VII-A): a voltage virus that
    // synchronously throttles issue across cores while 32 daxpy
    // threads keep power high, and a plain power virus.
    v.push_back(make("voltage_virus", S::Stressmark, R::None, C::Virus,
                     false, 0.05, 4.6, 57.0, 36.0, 0.0, 4));
    v.push_back(make("power_virus", S::Stressmark, R::None, C::Heavy,
                     false, 0.02, 5.2, 30.0, 2.0, 0.0, 4));
    // Vendor ISA verification suite analogue: wide circuit-path
    // coverage (it exercises the full load exposure) with only
    // moderate di/dt activity.
    v.push_back(make("isa_suite", S::Stressmark, R::None, C::Heavy,
                     false, 0.10, 6.5, 20.0, 1.0, 0.0, 2));

    return v;
}

} // namespace

// The catalog is built once (static local); later calls only
// return the reference.
// atmlint: contract(cold)
const std::vector<WorkloadTraits> &
allWorkloads()
{
    static const std::vector<WorkloadTraits> catalog = buildCatalog();
    return catalog;
}

const WorkloadTraits &
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    util::fatal("unknown workload '", name, "'");
}

bool
hasWorkload(const std::string &name)
{
    return std::any_of(allWorkloads().begin(), allWorkloads().end(),
                       [&](const WorkloadTraits &w) {
                           return w.name == name;
                       });
}

const WorkloadTraits &
idleWorkload()
{
    return findWorkload("idle");
}

std::vector<const WorkloadTraits *>
ubenchPrograms()
{
    std::vector<const WorkloadTraits *> out;
    for (const auto &w : allWorkloads()) {
        if (w.suite == Suite::UBench)
            out.push_back(&w);
    }
    return out;
}

std::vector<const WorkloadTraits *>
profiledApps()
{
    // The Fig. 10 heatmap profiles the realistic single-threaded apps.
    std::vector<const WorkloadTraits *> out;
    for (const auto &w : allWorkloads()) {
        if (w.suite == Suite::SpecCpu2017 || w.suite == Suite::Parsec)
            out.push_back(&w);
    }
    return out;
}

std::vector<const WorkloadTraits *>
criticalApps()
{
    std::vector<const WorkloadTraits *> out;
    for (const auto &w : allWorkloads()) {
        if (w.role == Role::Critical)
            out.push_back(&w);
    }
    return out;
}

std::vector<const WorkloadTraits *>
backgroundApps()
{
    std::vector<const WorkloadTraits *> out;
    for (const auto &w : allWorkloads()) {
        if (w.role == Role::Background)
            out.push_back(&w);
    }
    return out;
}

const WorkloadTraits &
voltageVirus()
{
    return findWorkload("voltage_virus");
}

void
validateCatalog()
{
    for (const auto &w : allWorkloads()) {
        w.validate();
        // Calibration invariants: light/medium apps stay within the
        // thread-normal droop bound, every app within the worst bound,
        // the virus dominates every app.
        if (w.suite == Suite::SpecCpu2017 || w.suite == Suite::Parsec
            || w.suite == Suite::DnnInference) {
            if ((w.stress == StressClass::Light
                 || w.stress == StressClass::Medium)
                && w.droopMv > variation::kNormalClassMaxDroopMv) {
                util::fatal("workload ", w.name, " is light/medium but "
                            "droops above the thread-normal bound");
            }
            if (w.droopMv > variation::kWorstClassDroopMv)
                util::fatal("workload ", w.name,
                            " droops above the thread-worst bound");
        }
        if (w.suite == Suite::UBench
            && w.droopMv > variation::kUbenchDroopMv) {
            util::fatal("uBench workload ", w.name,
                        " droops above the uBench bound");
        }
    }
    const auto &virus = voltageVirus();
    for (const auto &w : allWorkloads()) {
        if (w.suite != Suite::Stressmark && w.droopMv >= virus.droopMv)
            util::fatal("workload ", w.name, " out-stresses the virus");
    }
    // Exactly one app must sit at the thread-worst bound (x264).
    if (findWorkload("x264").droopMv != variation::kWorstClassDroopMv)
        util::fatal("x264 must define the thread-worst droop bound");
    // And at least one light/medium app at the thread-normal bound.
    bool have_normal_bound = false;
    for (const auto &w : allWorkloads()) {
        if ((w.stress == StressClass::Light
             || w.stress == StressClass::Medium)
            && w.droopMv == variation::kNormalClassMaxDroopMv) {
            have_normal_bound = true;
        }
    }
    if (!have_normal_bound)
        util::fatal("no workload sits at the thread-normal droop bound");
}

} // namespace atmsim::workload
