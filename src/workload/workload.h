/**
 * @file
 * Workload activity models.
 *
 * ATM cares about a workload's *electrical signature* -- its power
 * level, the depth and rate of the di/dt events its microarchitectural
 * activity creates -- and about its *performance model* -- how its
 * throughput scales with core frequency. WorkloadTraits captures
 * exactly these, replacing the binaries the paper ran on real
 * hardware (SPEC CPU2017, PARSEC 3.0, DNN inference, uBench,
 * stressmarks) with calibrated synthetic equivalents.
 */

#pragma once

#include <string>
#include <vector>

namespace atmsim::workload {

/** Benchmark suite a workload belongs to. */
enum class Suite {
    Idle,
    UBench,
    SpecCpu2017,
    Parsec,
    DnnInference,
    Stressmark,
};

/** Printable suite name. */
const char *suiteName(Suite suite);

/** Scheduling role per the paper's Table II. */
enum class Role {
    Critical,   ///< User-facing, latency sensitive.
    Background, ///< Throughput work, tolerates throttling.
    None,       ///< Not classified in Table II.
};

/** Printable role name. */
const char *roleName(Role role);

/** Stress class used for the thread-normal / thread-worst split. */
enum class StressClass {
    Calm,   ///< Idle or uBench-level system noise.
    Light,  ///< Small droops (e.g. gcc, leela).
    Medium, ///< Moderate droops (e.g. bodytrack, swaptions).
    Heavy,  ///< Large droops (e.g. x264, ferret).
    Virus,  ///< Test-time stressmark.
};

/** Printable stress-class name. */
const char *stressClassName(StressClass cls);

/**
 * One execution phase of a workload: real applications alternate
 * between heavy and light program regions (x264's frame encode vs.
 * bitstream packing, ferret's rank vs. extract stages). Scales are
 * relative to the workload's quoted activity/droop: the quoted droop
 * is the worst phase (droopScale <= 1) and the activity scales
 * average to ~1 so time-averaged power matches the quoted level.
 */
struct WorkloadPhase
{
    double durationUs = 1.0;
    double activityScale = 1.0;
    double droopScale = 1.0;
};

/** Static description of one workload. */
struct WorkloadTraits
{
    std::string name;
    Suite suite = Suite::Idle;
    Role role = Role::None;
    StressClass stress = StressClass::Calm;

    /** True if the workload pressures the memory subsystem. */
    bool memIntensive = false;

    /** Fraction of execution time bound to the fixed-clock nest. */
    double memBoundFrac = 0.0;

    /** Dynamic power per thread at 4.2 GHz / 1.25 V (W). */
    double activityWPerThread = 0.0;

    /** Characteristic chip-level di/dt droop the workload creates (mV). */
    double droopMv = 0.0;

    /** di/dt event rate (events per microsecond). */
    double eventsPerUs = 0.0;

    /** Latency of one work unit at the 4.2 GHz static margin (ms);
     *  0 when latency is not the metric. */
    double baselineLatencyMs = 0.0;

    /** Natural SMT thread count when scheduled alone on a core. */
    int defaultThreads = 1;

    /** Phase structure (empty = a single uniform phase). */
    std::vector<WorkloadPhase> phases;

    /**
     * Core-level dynamic activity for a thread count, including SMT
     * scaling (diminishing returns beyond one thread).
     */
    double coreActivityW(int threads) const;

    /**
     * Relative performance at a core frequency versus the 4.2 GHz
     * static margin: 1 / ((1 - m) * 4200/f + m). Compute-bound
     * workloads (m ~ 0) scale almost linearly with frequency;
     * memory-bound workloads flatten (Fig. 12b).
     *
     * @param f_mhz Core frequency (MHz).
     */
    double perfRelative(double f_mhz) const;

    /** Work-unit latency at a core frequency (ms); requires
     *  baselineLatencyMs > 0. */
    double latencyMs(double f_mhz) const;

    /** Activity scale of the phase active at a point in time. */
    double phaseActivityScale(double now_us) const;

    /** Droop scale of the phase active at a point in time. */
    double phaseDroopScale(double now_us) const;

    /** Time-averaged activity scale across the phase cycle. */
    double avgActivityScale() const;

    /** Validate ranges; fatal() on violation. */
    void validate() const;

  private:
    /** Phase active at a point in time (nullptr when unphased). */
    const WorkloadPhase *phaseAt(double now_us) const;
};

} // namespace atmsim::workload
