/**
 * @file
 * The workload catalog: calibrated activity models for the benchmarks
 * the paper profiles -- SPEC CPU2017, PARSEC 3.0, the DNN inference
 * workloads of Table II, the three uBench programs (coremark, daxpy,
 * stream), and the test-time stressmarks of Sec. VII-A.
 *
 * Droop levels are calibrated against the characterization data:
 * light/medium workloads stay at or below kNormalClassMaxDroopMv (so
 * the thread-normal limit supports them), heavy workloads reach up to
 * kWorstClassDroopMv (x264, the thread-worst bound).
 */

#pragma once

#include <vector>

#include "workload/workload.h"

namespace atmsim::workload {

/** @return The full catalog (stable order, stable across calls). */
const std::vector<WorkloadTraits> &allWorkloads();

/**
 * Find a workload by name; fatal() if unknown.
 *
 * @param name Catalog name, e.g. "x264", "squeezenet", "daxpy".
 */
const WorkloadTraits &findWorkload(const std::string &name);

/** @return true when the catalog contains the name. */
bool hasWorkload(const std::string &name);

/** The system-idle pseudo-workload. */
const WorkloadTraits &idleWorkload();

/** The three uBench programs: coremark, daxpy, stream. */
std::vector<const WorkloadTraits *> ubenchPrograms();

/**
 * The realistic applications profiled in the Fig. 10 heatmap
 * (SPEC CPU2017 + PARSEC single-threaded workloads).
 */
std::vector<const WorkloadTraits *> profiledApps();

/** Table II critical applications. */
std::vector<const WorkloadTraits *> criticalApps();

/** Table II background applications. */
std::vector<const WorkloadTraits *> backgroundApps();

/** The test-time voltage-virus stressmark. */
const WorkloadTraits &voltageVirus();

/** Catalog-wide self-check: validates every entry and the droop-class
 *  invariants the calibration relies on; fatal() on violation. */
void validateCatalog();

} // namespace atmsim::workload
