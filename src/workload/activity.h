/**
 * @file
 * Stochastic activity generation: converts a workload's electrical
 * signature into a time series of transient load-current events for
 * the simulation engine. Pipeline flushes and similar
 * microarchitectural bursts become rectangular current pulses; the
 * voltage virus emits a synchronized square wave (its 1-in-128-cycle
 * issue throttle pattern).
 */

#pragma once

#include "util/rng.h"
#include "workload/workload.h"

namespace atmsim::workload {

/** Per-core transient current event source. */
class ActivityGenerator
{
  public:
    /**
     * @param traits Workload traits (not owned).
     * @param event_current_a Pulse amplitude (A) that the PDN maps to
     *        this workload's characteristic droop at this core.
     * @param rng Random stream for event timing.
     */
    ActivityGenerator(const WorkloadTraits *traits, double event_current_a,
                      util::Rng rng);

    /**
     * Transient (above-baseline) current draw at a point in time.
     * Must be called with non-decreasing timestamps.
     *
     * @param now_ns Simulation time.
     * @return Additional current (A) on top of the DC baseline.
     */
    double transientCurrentA(double now_ns);

    /** Pulse amplitude (A). */
    double eventCurrentA() const { return eventCurrentA_; }

    /**
     * Time of the next scheduled pulse start (ns); effectively
     * infinite (1e30) when the workload emits no events. The engine's
     * sampled mode reads this to bound how far it may fast-forward
     * without missing a di/dt event. Synchronized (virus) generators
     * pulse continuously, so the bound does not apply to them.
     */
    double nextEventNs() const { return nextEventNs_; }

    /**
     * Amplitude ramp-in time (ns): events reach full depth only after
     * the workload has been running this long, letting the control
     * loop adapt to the workload's average current first (real
     * workloads ramp over far longer scales).
     */
    static constexpr double kRampNs = 120.0;

    const WorkloadTraits &traits() const { return *traits_; }

  private:
    void scheduleNext(double after_ns);

    const WorkloadTraits *traits_;
    double eventCurrentA_;
    util::Rng rng_;
    bool synchronized_;
    double nextEventNs_ = 0.0;
    double pulseEndNs_ = -1.0;
    double pulseWidthNs_ = 8.0;
};

} // namespace atmsim::workload
