#include "variation/aging.h"

#include <cmath>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::variation {

double
agingDelayFactor(const AgingParams &params, double years, double avg_v,
                 double avg_t_c)
{
    if (years < 0.0)
        util::fatal("aging: negative service time ", years);
    // atmlint: allow(float-equality) -- exact fresh-silicon fast
    // path; any nonzero service time takes the full model below.
    if (years == 0.0)
        return 1.0;
    const double stress =
        (1.0 + params.voltageAccel
               * (avg_v - circuit::kVddNominal.value()) / 0.1)
        * (1.0 + params.tempAccel
                 * (avg_t_c - circuit::kTempNominal.value()) / 25.0);
    const double slowdown = params.delayFracPerYearN
                          * std::pow(years, params.timeExponent)
                          * std::max(stress, 0.1);
    return 1.0 + slowdown;
}

void
applyAging(ChipSilicon &chip, const AgingParams &params, double years,
           double avg_v, double avg_t_c)
{
    const double factor =
        agingDelayFactor(params, years, avg_v, avg_t_c);
    for (auto &core : chip.cores)
        core.speedFactor *= factor;
    chip.validate();
}

} // namespace atmsim::variation
