/**
 * @file
 * The paper-calibrated reference chip pair.
 *
 * The HPCA'19 study measured two eight-core POWER7+ processors (P0 and
 * P1). We reconstruct their per-core silicon parameters by inverting
 * our model against the published data: Table I's four limit rows,
 * Fig. 7's idle-limit frequencies, and the per-core non-linearity
 * anecdotes of Sec. IV-C (P1C1, P1C2, P1C3, P1C6, P0C4/P1C7).
 */

#pragma once

#include <vector>

#include "variation/calibration.h"
#include "variation/core_silicon.h"

namespace atmsim::variation {

/** Number of measured reference cores (2 chips x 8 cores). */
constexpr int kReferenceCoreCount = 16;

/**
 * Published characterization targets for a reference core.
 *
 * @param chip Chip index (0 or 1).
 * @param core Core index (0..7).
 * @return The Table I column plus the Fig. 7 idle-limit frequency.
 */
const CoreLimitTargets &referenceTargets(int chip, int core);

/**
 * Build one calibrated reference chip.
 *
 * @param chip_index 0 for P0, 1 for P1.
 * @return Chip whose characterization reproduces Table I exactly.
 */
ChipSilicon makeReferenceChip(int chip_index);

/** Build the full two-socket reference server (P0 and P1). */
std::vector<ChipSilicon> makeReferenceServer();

} // namespace atmsim::variation
