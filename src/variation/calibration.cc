#include "variation/calibration.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "circuit/constants.h"
#include "util/logging.h"
#include "util/units.h"

namespace atmsim::variation {

namespace {

/** Stable FNV-1a hash (std::hash is not guaranteed stable). */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Sample an unconstrained CPM segment delay (nominal ps). */
double
sampleStep(util::Rng &rng)
{
    const double sigma = 0.45;
    const double mu = std::log(kMeanStepPs) - 0.5 * sigma * sigma;
    return std::max(0.7, rng.lognormal(mu, sigma));
}

} // namespace

void
CoreLimitTargets::validate() const
{
    if (worst < 1)
        util::fatal("thread-worst limit must be >= 1, got ", worst);
    if (!(worst <= normal && normal <= ubench && ubench <= idle)) {
        util::fatal("limit ordering violated: worst ", worst, " normal ",
                    normal, " ubench ", ubench, " idle ", idle);
    }
    if (idle > 14)
        util::fatal("idle limit ", idle, " implausibly large");
    if (idleLimitMhz < 4300.0 || idleLimitMhz > 5600.0)
        util::fatal("idle-limit frequency ", idleLimitMhz,
                    " MHz outside plausible band");
}

double
scenarioExtraPs(const CoreSiliconParams &core, double exposure_ps,
                double droop_mv)
{
    return exposure_ps
         + core.didtVulnerability * kUncoveredPsPerMv * droop_mv;
}

double
runNoisePs(const CoreSiliconParams &core, int rep)
{
    // Scrambled van der Corput: any 8 consecutive draws place exactly
    // one sample in each eighth of the noise range, so short repeat
    // campaigns still observe both the benign and the hostile end.
    util::VanDerCorput seq(fnv1a(core.name));
    return core.idleNoiseFloorPs + core.idleNoiseRangePs * seq.at(rep);
}

namespace {

/**
 * One attempt at the full inversion; returns false when the sampled
 * step jitter leads to an infeasible placement (the caller retries
 * with fresh jitter).
 *
 * Placement scheme: a scenario whose characterization limit must be X
 * gets its effective extra delay E placed so that
 *   - configuration X is safe under the entire noise range
 *     (E <= S(X) - n0 - r), and
 *   - configuration X+1 fails for noise draws in the upper part of
 *     the range (E ~ S(X+1) - n0 - 0.35 r),
 * which both pins the observed limit at X (the repeat campaign's most
 * conservative outcome) and produces the two-configuration run-to-run
 * distributions of Figs. 7-9.
 */
bool
tryBuildCore(CoreSiliconParams &core, const CoreLimitTargets &t,
             int preset_steps, double speed_factor, util::Rng &rng,
             const StepHints *hints, double guard_inflation)
{
    const double dpll_slack_ps = circuit::kDpllTargetSlack.value();
    const double s = speed_factor;
    const double n0 = kIdleNoiseFloorPs;
    const double r = kIdleNoiseRangePs;
    const double conv = kUncoveredPsPerMv;
    const double d_ub = kUbenchDroopMv;
    const double d_norm = kNormalClassMaxDroopMv;
    const double d_worst = kWorstClassDroopMv;
    const int P = preset_steps;
    const int L = t.idle;

    // --- 1. Step deltas d[1..P]: d[i] is the segment removed by
    // reduction step i, in nominal ps.
    std::vector<double> d(P + 1, 0.0);
    std::vector<bool> pinned(P + 1, false);
    if (hints) {
        for (std::size_t i = 0; i < hints->size() && i < d.size() - 1; ++i) {
            if ((*hints)[i] > 0.0) {
                d[i + 1] = (*hints)[i] / s; // hints are effective ps
                pinned[i + 1] = true;
            }
        }
    }

    // Total removal over L steps fixes the idle-limit frequency.
    const double period0 =
        util::periodOf(circuit::kDefaultAtmIdleMhz).value();
    const double period_l = util::mhzToPs(t.idleLimitMhz);
    const double removal = (period0 - period_l) / s;
    if (removal <= 0.0)
        util::fatal("idle-limit frequency must exceed the default ATM idle");

    double pinned_sum = 0.0;
    int free_count = 0;
    for (int i = 1; i <= L; ++i) {
        if (pinned[i])
            pinned_sum += d[i];
        else
            ++free_count;
    }
    if (free_count > 0) {
        if (pinned_sum >= removal)
            util::fatal("step hints exceed the removal budget");
        std::vector<double> raw(L + 1, 0.0);
        double raw_sum = 0.0;
        for (int i = 1; i <= L; ++i) {
            if (!pinned[i]) {
                // Bias segments above the thread-normal position when
                // the solve keeps failing: this raises the normal/worst
                // placement windows together, which is what separates
                // them enough for the bounded app-droop range.
                const double bias = i > t.normal + 1 ? guard_inflation
                                                     : 1.0;
                raw[i] = sampleStep(rng) * bias;
                raw_sum += raw[i];
            }
        }
        const double scale = (removal - pinned_sum) / raw_sum;
        for (int i = 1; i <= L; ++i) {
            if (!pinned[i])
                d[i] = raw[i] * scale;
        }
    }

    // Guard segment (first unsafe step) and deeper segments.
    if (!pinned[L + 1]) {
        d[L + 1] = std::max(kMinGuardStepPs / s,
                            rng.uniform(1.3, 2.6)) * guard_inflation;
    }
    for (int i = L + 2; i <= P; ++i) {
        if (!pinned[i])
            d[i] = sampleStep(rng);
    }

    // Every segment in the explored range must exceed the run-noise
    // window or adjacent configurations become indistinguishable.
    for (int i = 1; i <= std::min(L + 1, P); ++i) {
        if (d[i] * s < 0.7 * r)
            return false;
    }

    // The chain extends past the preset so non-controlling CPM sites
    // can carry their extra preset offsets (Fig. 4b).
    constexpr int extra_segments = 4;
    core.cpmStepPs.assign(static_cast<std::size_t>(P) + extra_segments,
                          0.0);
    for (int i = 1; i <= P; ++i)
        core.cpmStepPs[P - i] = d[i];
    for (int j = P; j < P + extra_segments; ++j)
        core.cpmStepPs[static_cast<std::size_t>(j)] = sampleStep(rng);
    core.presetSteps = P;
    core.speedFactor = s;

    // --- 2. Synthetic path: preset lands exactly on the default ATM
    // idle frequency at nominal conditions.
    const double ins_full = std::accumulate(core.cpmStepPs.begin(),
                                            core.cpmStepPs.begin() + P,
                                            0.0);
    core.synthPathPs = (period0 - dpll_slack_ps) / s - ins_full;
    if (core.synthPathPs <= 0.0)
        util::fatal("negative synthetic path delay");

    // --- 3. Real path from the idle placement S(L+1) = n0 + 0.3 r.
    core.realPathIdlePs = core.synthPathPs
                        + core.insertedDelayPs(CpmSteps{P - L - 1}).value()
                        + (dpll_slack_ps - n0 - 0.3 * r) / s;
    core.idleNoiseFloorPs = n0;
    core.idleNoiseRangePs = r;

    // Placement window for a scenario with limit X (see doc comment).
    auto slack = [&](int x) {
        return core.safetySlackPs(CpmSteps{x}).value();
    };
    auto win_lo = [&](int x) { return slack(x + 1) - n0 - 0.5 * r; };
    auto win_hi = [&](int x) { return slack(x) - n0 - r; };
    auto place = [&](int x) { return slack(x + 1) - n0 - 0.35 * r; };
    auto in_window = [&](double e, int x) {
        return e > win_lo(x) && e <= win_hi(x);
    };

    // --- 4. Vulnerability and load exposure from the thread rows.
    const int N = t.normal;
    const int W = t.worst;
    double vuln = 0.0;
    double load = 0.0;
    if (W < N) {
        const double tn = place(N);
        const double tw = place(W);
        vuln = (tw - tn) / (conv * (d_worst - d_norm));
        load = tn - vuln * conv * d_norm;
        if (load < 0.0) {
            load = 0.0;
            const double lo = std::max({win_lo(N) / d_norm,
                                        win_lo(W) / d_worst, 0.0});
            const double hi = std::min(win_hi(N) / d_norm,
                                       win_hi(W) / d_worst);
            if (lo >= hi)
                return false; // infeasible; retry with new jitter
            vuln = 0.5 * (lo + hi) / conv;
        }
    } else {
        // Degenerate: normal and worst land in the same window.
        // Spread the two stress levels inside it.
        const double lo = std::max(win_lo(N), 0.0);
        const double width = win_hi(N) - lo;
        if (width <= 0.0)
            return false;
        const double e_norm_t = lo + 0.3 * width;
        const double e_worst_t = lo + 0.7 * width;
        vuln = (e_worst_t - e_norm_t) / (conv * (d_worst - d_norm));
        load = e_norm_t - vuln * conv * d_norm;
        if (load < 0.0) {
            load = 0.0;
            const double vlo = std::max(win_lo(N), 0.0) / d_norm;
            const double vhi = win_hi(N) / d_worst;
            if (vlo >= vhi)
                return false;
            vuln = 0.5 * (vlo + vhi) / conv;
        }
    }
    if (vuln < 0.0)
        return false;
    core.didtVulnerability = vuln;
    core.loadExposurePs = load;

    // Check both bounding stress levels land in their windows.
    if (!in_window(scenarioExtraPs(core, load, d_norm), N))
        return false;
    if (!in_window(scenarioExtraPs(core, load, d_worst), W))
        return false;

    // --- 5. uBench exposure.
    const int U = t.ubench;
    double e_ub_target;
    if (U == L)
        e_ub_target = std::min(0.1 * r, win_hi(L));
    else
        e_ub_target = std::min(place(U), win_hi(U));
    core.ubenchExtraPs = std::max(0.0, e_ub_target - vuln * conv * d_ub);
    const double e_ub = scenarioExtraPs(core, core.ubenchExtraPs, d_ub);
    if (U == L) {
        if (e_ub > win_hi(L))
            return false;
    } else if (!in_window(e_ub, U)) {
        return false;
    }

    // The test-time virus must sustain the thread-worst configuration
    // across the whole noise range (Sec. VII-A).
    if (scenarioExtraPs(core, load, kVirusDroopMv) > win_hi(W))
        return false;

    return true;
}

} // namespace

CoreSiliconParams
buildCoreFromTargets(const std::string &name, const CoreLimitTargets &targets,
                     int preset_steps, double speed_factor, util::Rng &rng,
                     const StepHints *hints)
{
    targets.validate();
    if (preset_steps < targets.idle + 2) {
        util::fatal("core ", name, ": preset ", preset_steps,
                    " too small for idle limit ", targets.idle);
    }
    // The removal the idle-limit frequency implies must leave every
    // segment above the run-noise resolution, or adjacent
    // configurations would be indistinguishable to characterization.
    const double removal =
        (util::periodOf(circuit::kDefaultAtmIdleMhz).value()
         - util::mhzToPs(targets.idleLimitMhz)) / speed_factor;
    if (removal < 0.9 * static_cast<double>(targets.idle)) {
        util::fatal("core ", name, ": idle limit ", targets.idle,
                    " needs segments below the noise resolution for a ",
                    targets.idleLimitMhz, " MHz idle-limit frequency");
    }

    CoreSiliconParams core;
    core.name = name;
    // Five CPM sites (IFU, ISU, FXU, FPU, LLC); the controlling site
    // has offset 0, the rest carry extra preset protection.
    core.siteOffsets.assign(circuit::kCpmSitesPerCore, 0);
    util::Rng site_rng = rng.fork(fnv1a(name));
    for (std::size_t i = 1; i < core.siteOffsets.size(); ++i)
        core.siteOffsets[i] = 1 + static_cast<int>(site_rng.below(3));

    const int max_attempts = 240;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        // Inflate the guard segment (and the segments above the
        // thread-normal position) gradually if the solve keeps
        // failing; this raises the placement windows apart.
        const double inflation = 1.0 + 0.3 * (attempt / 10);
        if (tryBuildCore(core, targets, preset_steps, speed_factor, rng,
                         hints, inflation)) {
            core.validate();
            verifyCoreTargets(core, targets);
            return core;
        }
    }
    util::fatal("core ", name,
                ": could not invert silicon parameters from targets");
}

void
verifyCoreTargets(const CoreSiliconParams &core,
                  const CoreLimitTargets &targets, int reps)
{
    auto observed_limit = [&](double exposure, double droop) {
        int lo = core.presetSteps;
        for (int rep = 0; rep < reps; ++rep) {
            const double extra = scenarioExtraPs(core, exposure, droop);
            const int k =
                analyticMaxSafeReduction(
                    core, Picoseconds{extra},
                    Picoseconds{runNoisePs(core, rep)})
                    .value();
            lo = std::min(lo, k);
        }
        return lo;
    };

    const int idle = observed_limit(0.0, 0.0);
    if (idle != targets.idle)
        util::fatal("core ", core.name, ": idle limit ", idle,
                    " != target ", targets.idle);
    const int ubench = observed_limit(core.ubenchExtraPs, kUbenchDroopMv);
    if (ubench != targets.ubench)
        util::fatal("core ", core.name, ": uBench limit ", ubench,
                    " != target ", targets.ubench);
    const int normal = observed_limit(core.loadExposurePs,
                                      kNormalClassMaxDroopMv);
    if (normal != targets.normal)
        util::fatal("core ", core.name, ": thread-normal limit ", normal,
                    " != target ", targets.normal);
    const int worst = observed_limit(core.loadExposurePs, kWorstClassDroopMv);
    if (worst != targets.worst)
        util::fatal("core ", core.name, ": thread-worst limit ", worst,
                    " != target ", targets.worst);
}

} // namespace atmsim::variation
