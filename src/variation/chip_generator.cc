#include "variation/chip_generator.h"

#include <algorithm>
#include <cmath>

#include "circuit/constants.h"
#include "util/logging.h"
#include "util/units.h"
#include "variation/calibration.h"
#include "variation/process_grid.h"

namespace atmsim::variation {

namespace {

/** Weighted draw of a rollback gap between adjacent limit rows. */
int
sampleGap(util::Rng &rng, std::initializer_list<double> weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    double u = rng.uniform() * total;
    int value = 0;
    for (double w : weights) {
        if (u < w)
            return value;
        u -= w;
        ++value;
    }
    return value - 1;
}

} // namespace

ChipSilicon
generateChip(const std::string &name, std::uint64_t seed,
             const ChipGeneratorConfig &config)
{
    ChipSilicon chip;
    chip.name = name;
    util::Rng rng(seed);
    ProcessGrid grid(config.gridResolution, config.gridSmoothing, rng);

    for (int c = 0; c < circuit::kCoresPerChip; ++c) {
        // Cores sit in a 2x4 arrangement on the die.
        const double x = (c % 4) / 3.0;
        const double y = (c / 4) * 1.0;
        const double field = grid.sample(x, y);

        CoreLimitTargets targets;
        targets.idleLimitMhz = std::clamp(
            config.idleLimitMeanMhz + field * config.idleLimitSigmaMhz
                + rng.gaussian(0.0, 25.0),
            config.idleLimitMinMhz, config.idleLimitMaxMhz);

        // The idle limit follows from how much period must be removed
        // to reach the idle-limit frequency at ~2 ps per segment.
        const double removal =
            util::periodOf(circuit::kDefaultAtmIdleMhz).value()
            - util::mhzToPs(targets.idleLimitMhz);
        const int idle_guess = static_cast<int>(
            std::lround(removal / kMeanStepPs + rng.gaussian(0.0, 0.8)));
        targets.idle = std::clamp(idle_guess, 2, 12);

        targets.ubench = std::max(
            1, targets.idle - sampleGap(rng, {0.60, 0.22, 0.12, 0.06}));
        targets.normal = std::max(
            1, targets.ubench - sampleGap(rng, {0.35, 0.45, 0.20}));
        targets.worst = std::max(
            1, targets.normal - sampleGap(rng, {0.25, 0.30, 0.25, 0.12,
                                                0.08}));

        const int preset = std::max(targets.idle + 4, 7)
                         + static_cast<int>(rng.below(3));
        const double speed = 4950.0 / targets.idleLimitMhz;
        const std::string core_name = name + "C" + std::to_string(c);
        util::Rng core_rng = rng.fork(static_cast<std::uint64_t>(c) + 101);
        chip.cores.push_back(buildCoreFromTargets(core_name, targets,
                                                  preset, speed, core_rng));
    }
    chip.validate();
    return chip;
}

} // namespace atmsim::variation
