#include "variation/process_grid.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace atmsim::variation {

ProcessGrid::ProcessGrid(int resolution, int smoothing_passes,
                         util::Rng &rng)
    : res_(resolution)
{
    if (resolution < 2)
        util::fatal("process grid resolution must be >= 2");
    field_.resize(static_cast<std::size_t>(res_) * res_);
    for (auto &v : field_)
        v = rng.gaussian();

    // Box smoothing with clamped borders.
    std::vector<double> next(field_.size());
    for (int pass = 0; pass < smoothing_passes; ++pass) {
        for (int y = 0; y < res_; ++y) {
            for (int x = 0; x < res_; ++x) {
                double sum = 0.0;
                int count = 0;
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        const int nx = x + dx;
                        const int ny = y + dy;
                        if (nx < 0 || nx >= res_ || ny < 0 || ny >= res_)
                            continue;
                        sum += field_[static_cast<std::size_t>(ny) * res_
                                      + nx];
                        ++count;
                    }
                }
                next[static_cast<std::size_t>(y) * res_ + x] =
                    sum / count;
            }
        }
        field_.swap(next);
    }

    // Renormalize to unit variance.
    double mean = 0.0;
    for (double v : field_)
        mean += v;
    mean /= static_cast<double>(field_.size());
    double var = 0.0;
    for (double v : field_)
        var += (v - mean) * (v - mean);
    var /= static_cast<double>(field_.size());
    const double scale = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
    for (auto &v : field_)
        v = (v - mean) * scale;
}

double
ProcessGrid::cell(int ix, int iy) const
{
    ix = std::clamp(ix, 0, res_ - 1);
    iy = std::clamp(iy, 0, res_ - 1);
    return field_[static_cast<std::size_t>(iy) * res_ + ix];
}

double
ProcessGrid::sample(double x, double y) const
{
    if (x < 0.0 || x > 1.0 || y < 0.0 || y > 1.0)
        util::fatal("process grid sample point (", x, ", ", y,
                    ") outside the unit square");
    const double fx = x * (res_ - 1);
    const double fy = y * (res_ - 1);
    const int ix = static_cast<int>(fx);
    const int iy = static_cast<int>(fy);
    const double tx = fx - ix;
    const double ty = fy - iy;
    const double a = cell(ix, iy) * (1 - tx) + cell(ix + 1, iy) * tx;
    const double b = cell(ix, iy + 1) * (1 - tx)
                   + cell(ix + 1, iy + 1) * tx;
    return a * (1 - ty) + b * ty;
}

} // namespace atmsim::variation
