/**
 * @file
 * Random chip generation: samples per-core characterization targets
 * from distributions fitted to the reference pair, then runs the same
 * inversion used for the reference chips. This demonstrates that the
 * fine-tuning methodology generalizes beyond the two measured parts.
 */

#pragma once

#include <cstdint>

#include "variation/core_silicon.h"

namespace atmsim::variation {

/** Tunable distribution knobs for random chip generation. */
struct ChipGeneratorConfig
{
    /** Spatially-correlated sigma of the idle-limit frequency (MHz). */
    double idleLimitSigmaMhz = 120.0;

    /** Mean idle-limit frequency (MHz). */
    double idleLimitMeanMhz = 4975.0;

    /** Lowest / highest idle-limit frequency allowed (MHz). */
    double idleLimitMinMhz = 4700.0;
    double idleLimitMaxMhz = 5250.0;

    /** Process-grid resolution and smoothing passes. */
    int gridResolution = 16;
    int gridSmoothing = 3;
};

/**
 * Generate a random chip.
 *
 * @param name Chip name (used in core names, e.g. "R0C3").
 * @param seed Generation seed; the same seed always yields the same
 *        chip.
 * @param config Distribution knobs.
 * @return A validated chip whose characterization limits are
 *         internally consistent (idle >= uBench >= normal >= worst).
 */
ChipSilicon generateChip(const std::string &name, std::uint64_t seed,
                         const ChipGeneratorConfig &config = {});

} // namespace atmsim::variation
