/**
 * @file
 * Transistor aging (BTI/HCI-style wearout): circuits slow down over
 * service life, faster at high voltage and temperature. A static
 * timing margin must budget end-of-life slowdown on day one -- one of
 * the guardband components the paper's Sec. II calls waste -- whereas
 * the ATM control loop tracks aging automatically, because the CPM
 * synthetic paths age alongside the functional paths they mimic.
 */

#pragma once

#include "variation/core_silicon.h"

namespace atmsim::variation {

/** Wearout model parameters. */
struct AgingParams
{
    /** Fractional delay increase after one year at nominal V/T. */
    double delayFracPerYearN = 0.010;

    /** Time-power-law exponent (BTI-typical ~0.2-0.25). */
    double timeExponent = 0.25;

    /** Additional fractional slowdown per 100 mV above nominal. */
    double voltageAccel = 0.35;

    /** Additional fractional slowdown per 25 degC above nominal. */
    double tempAccel = 0.30;
};

/**
 * Multiplicative delay factor after a service interval.
 *
 * @param params Wearout model.
 * @param years Service time in years (>= 0).
 * @param avg_v Average operating voltage (V).
 * @param avg_t_c Average junction temperature (degC).
 * @return Factor >= 1 that scales all path delays.
 */
double agingDelayFactor(const AgingParams &params, double years,
                        double avg_v, double avg_t_c);

/**
 * Age a chip in place: scales every core's silicon speed by the aging
 * factor for its assumed operating history. Both the CPM synthetic
 * paths and the real paths age together (the canary property).
 *
 * @param chip Chip silicon to age.
 * @param params Wearout model.
 * @param years Service time in years.
 * @param avg_v Average operating voltage (V).
 * @param avg_t_c Average junction temperature (degC).
 */
void applyAging(ChipSilicon &chip, const AgingParams &params,
                double years, double avg_v, double avg_t_c);

} // namespace atmsim::variation
