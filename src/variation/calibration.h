/**
 * @file
 * Calibration constants and the inversion that constructs per-core
 * silicon parameters from target characterization limits.
 *
 * The paper measured two physical POWER7+ chips; we cannot. Instead we
 * invert our model against the paper's published per-core numbers
 * (Table I limits, Fig. 7 idle-limit frequencies, Fig. 4b preset
 * ranges): given the target limits, solve for the step tables, real
 * path delay, load exposure and di/dt vulnerability that make the full
 * characterization procedure reproduce those targets. The same
 * inversion, fed with sampled targets, generates random chips.
 */

#pragma once

#include <optional>
#include <vector>

#include "util/rng.h"
#include "variation/core_silicon.h"

namespace atmsim::variation {

/**
 * Conversion from one millivolt of fast (uncovered) droop to effective
 * real-path delay increase in nominal ps, for a vulnerability-1.0
 * core. Derived from the delay model's voltage sensitivity (~0.52/V at
 * nominal), a ~211 ps total monitored delay, and the DPLL emergency
 * response covering ~30% of a fast droop:
 * 0.52/V * 211 ps * 0.7 * 1e-3 V/mV ~= 0.076 ps/mV.
 */
constexpr double kUncoveredPsPerMv = 0.076;

/** Chip-level droop created by uBench programs (mV). */
constexpr double kUbenchDroopMv = 3.0;

/**
 * Largest droop among "light and medium" applications (mV); the
 * thread-normal limit is taken against this bounding stress level.
 */
constexpr double kNormalClassMaxDroopMv = 12.0;

/** Droop of the most stressful profiled application, x264 (mV). */
constexpr double kWorstClassDroopMv = 55.0;

/** Droop of the test-time voltage-virus stressmark (mV). */
constexpr double kVirusDroopMv = 57.0;

/** Run-to-run idle timing-noise floor (ps). */
constexpr double kIdleNoiseFloorPs = 0.5;

/** Run-to-run idle timing-noise range above the floor (ps). */
constexpr double kIdleNoiseRangePs = 0.7;

/** Minimum delay of the first-unsafe guard segment (ps). */
constexpr double kMinGuardStepPs = 1.1;

/** Mean CPM segment delay used when sampling unconstrained steps. */
constexpr double kMeanStepPs = 2.0;

/**
 * Target characterization outcome for one core, i.e. one column of the
 * paper's Table I plus the idle-limit frequency from Fig. 7.
 */
struct CoreLimitTargets
{
    int idle = 0;    ///< Idle-limit delay reduction (steps).
    int ubench = 0;  ///< uBench limit (steps), <= idle.
    int normal = 0;  ///< Thread-normal limit (steps), <= ubench.
    int worst = 0;   ///< Thread-worst limit (steps), <= normal.

    /** ATM frequency at the idle limit, nominal conditions (MHz). */
    double idleLimitMhz = 5000.0;

    /** Validate ordering and ranges; fatal() on violation. */
    void validate() const;
};

/**
 * Optional hints pinning individual CPM segment delays, used to honor
 * the paper's per-core non-linearity anecdotes (Sec. IV-C). Index i
 * holds the delay (effective ps) of the segment removed by reduction
 * step i+1; entries <= 0 are sampled freely.
 */
using StepHints = std::vector<double>;

/**
 * Construct a core whose characterization limits equal the targets.
 *
 * @param name Core name (e.g. "P0C0").
 * @param targets Desired Table-I-style limits.
 * @param preset_steps Factory preset configuration (chain length).
 * @param speed_factor Process speed multiplier for this core.
 * @param rng Random stream for the unconstrained step jitter.
 * @param hints Optional per-step delay pins.
 * @return Fully-populated core parameters (validated).
 */
CoreSiliconParams buildCoreFromTargets(const std::string &name,
                                       const CoreLimitTargets &targets,
                                       int preset_steps,
                                       double speed_factor,
                                       util::Rng &rng,
                                       const StepHints *hints = nullptr);

/**
 * Scenario extra-delay model shared by the analytic characterizer and
 * the calibration verification: path exposure plus the uncovered part
 * of the scenario droop.
 *
 * @param core Core parameters.
 * @param exposure_ps Scenario path exposure (0 for idle, ubenchExtraPs
 *        for uBench, loadExposurePs for realistic workloads).
 * @param droop_mv Chip-level droop created by the scenario.
 * @return Effective extra delay in nominal ps.
 */
double scenarioExtraPs(const CoreSiliconParams &core, double exposure_ps,
                       double droop_mv);

/**
 * Verify that a core's analytic characterization reproduces the
 * targets exactly under stratified run noise; fatal() on mismatch.
 *
 * @param core Core to verify.
 * @param targets Expected limits.
 * @param reps Number of stratified noise draws (>= 4 recommended).
 */
void verifyCoreTargets(const CoreSiliconParams &core,
                       const CoreLimitTargets &targets, int reps = 8);

/**
 * Stratified run-noise draw for repetition rep of a characterization:
 * covers [floor, floor + range) with a low-discrepancy pattern so a
 * handful of repeats explores the whole noise range.
 */
double runNoisePs(const CoreSiliconParams &core, int rep);

} // namespace atmsim::variation
