#include "variation/reference_chips.h"

#include <array>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::variation {

namespace {

/** Table I of the paper: per-core limits in delay-reduction steps. */
constexpr std::array<std::array<int, 8>, 2> kIdleRow = {{
    {9, 8, 4, 11, 10, 7, 8, 2},
    {4, 8, 5, 8, 7, 5, 10, 3},
}};
constexpr std::array<std::array<int, 8>, 2> kUbenchRow = {{
    {9, 8, 4, 10, 9, 7, 8, 2},
    {4, 8, 5, 5, 6, 4, 10, 2},
}};
constexpr std::array<std::array<int, 8>, 2> kNormalRow = {{
    {8, 7, 4, 9, 8, 6, 7, 2},
    {3, 7, 5, 4, 5, 3, 8, 2},
}};
constexpr std::array<std::array<int, 8>, 2> kWorstRow = {{
    {6, 6, 3, 6, 6, 5, 5, 2},
    {3, 3, 5, 3, 3, 2, 6, 2},
}};

/**
 * Idle-limit frequencies consistent with Fig. 7 and the Sec. IV-C
 * anecdotes: P0C3 tops out around 5.2 GHz, P0C4 and P1C7 both reach
 * 5.1 GHz with very different step counts, P1C2 stops at 4.85 GHz
 * because of its oversized sixth segment, and P0C7 is the slow core
 * that creates the >200 MHz differential of Fig. 11 against P0C1.
 */
constexpr std::array<std::array<double, 8>, 2> kIdleLimitMhz = {{
    {5000, 5050, 4900, 5200, 5100, 5000, 5050, 4670},
    {4900, 5000, 4850, 5000, 4950, 4900, 5050, 5100},
}};

/** Mid-band silicon speed used to normalize per-core speed factors. */
constexpr double kMedianIdleLimitMhz = 4950.0;

/** Per-core step-delay hints encoding the Sec. IV-C anecdotes. */
const StepHints *
stepHints(int chip, int core)
{
    // Index i pins the segment removed by reduction step i+1
    // (effective ps); non-positive entries are sampled freely.
    static const StepHints p1c1 = {0, 0, 0, 0, 0, 0, 0, 0, 3.92};
    static const StepHints p1c2 = {0, 0, 0, 0, 0, 12.0};
    static const StepHints p1c3 = {0, 0, 0, 0, 0, 0.62, 4.4};
    static const StepHints p1c6 = {9.1, 0.58};
    if (chip == 1 && core == 1)
        return &p1c1;
    if (chip == 1 && core == 2)
        return &p1c2;
    if (chip == 1 && core == 3)
        return &p1c3;
    if (chip == 1 && core == 6)
        return &p1c6;
    return nullptr;
}

/** Factory preset inserted-delay configuration per core. */
int
presetFor(int chip, int core)
{
    const int idle = kIdleRow[chip][core];
    return std::max(idle + 4, 7) + (3 * chip + core) % 3;
}

} // namespace

const CoreLimitTargets &
referenceTargets(int chip, int core)
{
    if (chip < 0 || chip >= 2 || core < 0 || core >= 8)
        util::fatal("reference core P", chip, "C", core, " out of range");
    static std::array<std::array<CoreLimitTargets, 8>, 2> cache;
    static bool built = false;
    if (!built) {
        for (int p = 0; p < 2; ++p) {
            for (int c = 0; c < 8; ++c) {
                cache[p][c] = CoreLimitTargets{
                    kIdleRow[p][c], kUbenchRow[p][c], kNormalRow[p][c],
                    kWorstRow[p][c], kIdleLimitMhz[p][c]};
            }
        }
        built = true;
    }
    return cache[chip][core];
}

ChipSilicon
makeReferenceChip(int chip_index)
{
    if (chip_index < 0 || chip_index >= circuit::kChipsPerSystem)
        util::fatal("reference chip index ", chip_index, " out of range");

    ChipSilicon chip;
    chip.name = "P" + std::to_string(chip_index);
    // Fixed seed: the reference silicon is a specific pair of chips.
    util::Rng rng(0x7a1e5u + static_cast<std::uint64_t>(chip_index));
    for (int c = 0; c < circuit::kCoresPerChip; ++c) {
        const CoreLimitTargets &targets = referenceTargets(chip_index, c);
        const double speed = kMedianIdleLimitMhz / targets.idleLimitMhz;
        const std::string name =
            chip.name + "C" + std::to_string(c);
        util::Rng core_rng = rng.fork(static_cast<std::uint64_t>(c));
        chip.cores.push_back(buildCoreFromTargets(
            name, targets, presetFor(chip_index, c), speed, core_rng,
            stepHints(chip_index, c)));
    }
    chip.validate();
    return chip;
}

std::vector<ChipSilicon>
makeReferenceServer()
{
    std::vector<ChipSilicon> chips;
    for (int p = 0; p < circuit::kChipsPerSystem; ++p)
        chips.push_back(makeReferenceChip(p));
    return chips;
}

} // namespace atmsim::variation
