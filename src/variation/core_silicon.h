/**
 * @file
 * Per-core silicon parameters: the manufactured state of one core's
 * timing paths and its CPM inserted-delay chain.
 *
 * These parameters encode process variation (Sec. IV-B of the paper):
 * each core has its own speed, its own non-linear CPM step graduation
 * (Sec. IV-C), its own extra path exposure under load (Sec. V-B), and
 * its own vulnerability to di/dt noise (Sec. VI).
 */

#pragma once

#include <string>
#include <vector>

#include "util/quantity.h"

namespace atmsim::variation {

using util::CpmSteps;
using util::Mhz;
using util::Picoseconds;

/**
 * Manufactured parameters of one core. All delays are "nominal ps":
 * the value at nominal voltage/temperature for this core's silicon
 * before the shared environmental delay factor is applied.
 */
struct CoreSiliconParams
{
    /** Core name, e.g. "P0C0". */
    std::string name;

    /** Process speed multiplier for all paths in this core. */
    double speedFactor = 1.0;

    /** CPM synthetic-path delay (speed-1.0 silicon, nominal V/T), ps. */
    double synthPathPs = 0.0;

    /**
     * Inserted-delay chain segments, ps per inverter segment at
     * nominal conditions for speed-1.0 silicon. Segment delays vary
     * because of manufacturing: this is the non-linearity of
     * Sec. IV-C. insertedDelayPs(cfg) enables the first cfg segments.
     */
    std::vector<double> cpmStepPs;

    /** Factory-preset inserted-delay configuration (segment count). */
    int presetSteps = 0;

    /** Per-CPM-site preset offsets relative to presetSteps (>= 0). */
    std::vector<int> siteOffsets;

    /** Real worst-case path delay under idle activity, nominal ps. */
    double realPathIdlePs = 0.0;

    /** Extra path exposure activated by uBench beyond idle, ps. */
    double ubenchExtraPs = 0.0;

    /** Extra path exposure activated by realistic workloads, ps. */
    double loadExposurePs = 0.0;

    /** Local amplification of chip-level di/dt droops at this core. */
    double didtVulnerability = 1.0;

    /** Floor of run-to-run timing noise under system idle, ps. */
    double idleNoiseFloorPs = 0.5;

    /** Range of run-to-run timing noise above the floor, ps. */
    double idleNoiseRangePs = 0.7;

    /** @return Total inserted delay for a configuration (nominal). */
    Picoseconds insertedDelayPs(CpmSteps cfg_steps) const;

    /** @return Largest valid configuration (= chain length). */
    CpmSteps maxConfig() const
    {
        return CpmSteps{static_cast<int>(cpmStepPs.size())};
    }

    /**
     * Static safety slack at a given delay reduction (nominal):
     * the margin between the ATM steady-state period and the real
     * worst path, before transient effects and run noise.
     *
     * S(k) = s * (synth + inserted(preset - k) - realPathIdle)
     *        + dpllSlack
     *
     * @param reduction Steps of inserted-delay reduction from preset.
     */
    Picoseconds safetySlackPs(CpmSteps reduction) const;

    /**
     * ATM steady-state clock period at a given reduction and
     * environmental delay factor.
     *
     * @param reduction Steps reduced from the preset configuration.
     * @param delay_factor Shared environmental delay factor.
     */
    Picoseconds atmPeriodPs(CpmSteps reduction, double delay_factor) const;

    /** Convenience: ATM steady-state frequency. */
    Mhz atmFrequencyMhz(CpmSteps reduction, double delay_factor) const;

    /** Validate internal consistency; fatal() on violation. */
    void validate() const;
};

/** One processor chip: a name plus eight cores. */
struct ChipSilicon
{
    std::string name;
    std::vector<CoreSiliconParams> cores;

    /** Validate all cores. */
    void validate() const;
};

/**
 * Analytic safety decision used by both the calibration inversion and
 * the fast characterization mode: a configuration is safe when the
 * static slack covers the scenario's extra path exposure, the
 * uncovered transient droop, and this run's timing noise.
 *
 * @param core Core parameters.
 * @param reduction Steps of inserted-delay reduction from preset.
 * @param extra Scenario path exposure + uncovered droop (nominal).
 * @param noise This run's timing noise draw (nominal).
 * @return true when no timing violation occurs.
 */
bool analyticSafe(const CoreSiliconParams &core, CpmSteps reduction,
                  Picoseconds extra, Picoseconds noise);

/**
 * Largest safe reduction for a scenario under a given noise draw.
 *
 * @return Reduction steps in [0, preset]; 0 means the preset itself is
 *         the only safe point (the search never goes below preset).
 */
CpmSteps analyticMaxSafeReduction(const CoreSiliconParams &core,
                                  Picoseconds extra, Picoseconds noise);

} // namespace atmsim::variation
