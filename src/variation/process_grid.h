/**
 * @file
 * Spatially-correlated process variation field (VARIUS-style): white
 * Gaussian noise on a grid, smoothed to introduce spatial correlation,
 * then renormalized. Used to place random chips' cores on a die and
 * sample correlated speed parameters.
 */

#pragma once

#include <vector>

#include "util/rng.h"

namespace atmsim::variation {

/** Correlated 2D Gaussian field over the unit square. */
class ProcessGrid
{
  public:
    /**
     * @param resolution Grid cells per axis.
     * @param smoothing_passes Box-smoothing passes; more passes mean
     *        longer correlation distance.
     * @param rng Random source.
     */
    ProcessGrid(int resolution, int smoothing_passes, util::Rng &rng);

    /**
     * Sample the field at a point via bilinear interpolation.
     *
     * @param x Coordinate in [0, 1].
     * @param y Coordinate in [0, 1].
     * @return Field value, approximately N(0, 1) marginally.
     */
    double sample(double x, double y) const;

    int resolution() const { return res_; }

  private:
    double cell(int ix, int iy) const;

    int res_;
    std::vector<double> field_;
};

} // namespace atmsim::variation
