#include "variation/core_silicon.h"

#include <numeric>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::variation {

Picoseconds
CoreSiliconParams::insertedDelayPs(CpmSteps cfg_steps) const
{
    const int steps = cfg_steps.value();
    if (steps < 0 || cfg_steps > maxConfig()) {
        util::fatal("core ", name, ": inserted-delay config ", steps,
                    " out of range [0, ", maxConfig().value(), "]");
    }
    return Picoseconds{std::accumulate(cpmStepPs.begin(),
                                       cpmStepPs.begin() + steps, 0.0)};
}

Picoseconds
CoreSiliconParams::safetySlackPs(CpmSteps reduction) const
{
    const Picoseconds inserted =
        insertedDelayPs(CpmSteps{presetSteps} - reduction);
    return (Picoseconds{synthPathPs} + inserted - Picoseconds{realPathIdlePs})
             * speedFactor
         + circuit::kDpllTargetSlack;
}

Picoseconds
CoreSiliconParams::atmPeriodPs(CpmSteps reduction, double delay_factor) const
{
    const Picoseconds inserted =
        insertedDelayPs(CpmSteps{presetSteps} - reduction);
    return (Picoseconds{synthPathPs} + inserted)
             * (speedFactor * delay_factor)
         + circuit::kDpllTargetSlack;
}

Mhz
CoreSiliconParams::atmFrequencyMhz(CpmSteps reduction,
                                   double delay_factor) const
{
    return util::frequencyOf(atmPeriodPs(reduction, delay_factor));
}

void
CoreSiliconParams::validate() const
{
    if (name.empty())
        util::fatal("core has no name");
    if (speedFactor <= 0.5 || speedFactor >= 2.0)
        util::fatal("core ", name, ": implausible speed factor ",
                    speedFactor);
    if (synthPathPs <= 0.0)
        util::fatal("core ", name, ": synthetic path delay must be positive");
    if (presetSteps <= 0 || CpmSteps{presetSteps} > maxConfig())
        util::fatal("core ", name, ": preset ", presetSteps,
                    " outside chain length ", maxConfig().value());
    for (double step : cpmStepPs) {
        if (step <= 0.0)
            util::fatal("core ", name, ": non-positive CPM step ", step);
    }
    if (realPathIdlePs <= 0.0)
        util::fatal("core ", name, ": real path delay must be positive");
    if (ubenchExtraPs < 0.0 || loadExposurePs < 0.0)
        util::fatal("core ", name, ": negative path exposure");
    if (didtVulnerability < 0.0)
        util::fatal("core ", name, ": negative di/dt vulnerability");
    if (idleNoiseRangePs <= 0.0 || idleNoiseFloorPs < 0.0)
        util::fatal("core ", name, ": invalid noise parameters");
    // The preset configuration must be safe with room to spare, or the
    // factory would never have shipped the part.
    if (safetySlackPs(CpmSteps{0})
        <= Picoseconds{idleNoiseFloorPs + idleNoiseRangePs})
        util::fatal("core ", name, ": preset configuration is not safe");
}

void
ChipSilicon::validate() const
{
    if (cores.size() != static_cast<std::size_t>(circuit::kCoresPerChip))
        util::fatal("chip ", name, ": expected ", circuit::kCoresPerChip,
                    " cores, got ", cores.size());
    for (const auto &core : cores)
        core.validate();
}

bool
analyticSafe(const CoreSiliconParams &core, CpmSteps reduction,
             Picoseconds extra, Picoseconds noise)
{
    return core.safetySlackPs(reduction) >= extra + noise;
}

CpmSteps
analyticMaxSafeReduction(const CoreSiliconParams &core, Picoseconds extra,
                         Picoseconds noise)
{
    // Safety is monotone in the reduction (every disabled segment has
    // positive delay), so scan upward until the first violation.
    int best = 0;
    for (int k = 1; k <= core.presetSteps; ++k) {
        if (!analyticSafe(core, CpmSteps{k}, extra, noise))
            break;
        best = k;
    }
    return CpmSteps{best};
}

} // namespace atmsim::variation
