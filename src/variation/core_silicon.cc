#include "variation/core_silicon.h"

#include <numeric>

#include "circuit/constants.h"
#include "util/logging.h"
#include "util/units.h"

namespace atmsim::variation {

double
CoreSiliconParams::insertedDelayPs(int cfg_steps) const
{
    if (cfg_steps < 0 || cfg_steps > maxConfig()) {
        util::fatal("core ", name, ": inserted-delay config ", cfg_steps,
                    " out of range [0, ", maxConfig(), "]");
    }
    return std::accumulate(cpmStepPs.begin(), cpmStepPs.begin() + cfg_steps,
                           0.0);
}

double
CoreSiliconParams::safetySlackPs(int reduction) const
{
    const double inserted = insertedDelayPs(presetSteps - reduction);
    return speedFactor * (synthPathPs + inserted - realPathIdlePs)
         + circuit::kDpllTargetSlackPs;
}

double
CoreSiliconParams::atmPeriodPs(int reduction, double delay_factor) const
{
    const double inserted = insertedDelayPs(presetSteps - reduction);
    return speedFactor * delay_factor * (synthPathPs + inserted)
         + circuit::kDpllTargetSlackPs;
}

double
CoreSiliconParams::atmFrequencyMhz(int reduction, double delay_factor) const
{
    return util::psToMhz(atmPeriodPs(reduction, delay_factor));
}

void
CoreSiliconParams::validate() const
{
    if (name.empty())
        util::fatal("core has no name");
    if (speedFactor <= 0.5 || speedFactor >= 2.0)
        util::fatal("core ", name, ": implausible speed factor ",
                    speedFactor);
    if (synthPathPs <= 0.0)
        util::fatal("core ", name, ": synthetic path delay must be positive");
    if (presetSteps <= 0 || presetSteps > maxConfig())
        util::fatal("core ", name, ": preset ", presetSteps,
                    " outside chain length ", maxConfig());
    for (double step : cpmStepPs) {
        if (step <= 0.0)
            util::fatal("core ", name, ": non-positive CPM step ", step);
    }
    if (realPathIdlePs <= 0.0)
        util::fatal("core ", name, ": real path delay must be positive");
    if (ubenchExtraPs < 0.0 || loadExposurePs < 0.0)
        util::fatal("core ", name, ": negative path exposure");
    if (didtVulnerability < 0.0)
        util::fatal("core ", name, ": negative di/dt vulnerability");
    if (idleNoiseRangePs <= 0.0 || idleNoiseFloorPs < 0.0)
        util::fatal("core ", name, ": invalid noise parameters");
    // The preset configuration must be safe with room to spare, or the
    // factory would never have shipped the part.
    if (safetySlackPs(0) <= idleNoiseFloorPs + idleNoiseRangePs)
        util::fatal("core ", name, ": preset configuration is not safe");
}

void
ChipSilicon::validate() const
{
    if (cores.size() != static_cast<std::size_t>(circuit::kCoresPerChip))
        util::fatal("chip ", name, ": expected ", circuit::kCoresPerChip,
                    " cores, got ", cores.size());
    for (const auto &core : cores)
        core.validate();
}

bool
analyticSafe(const CoreSiliconParams &core, int reduction, double extra_ps,
             double noise_ps)
{
    return core.safetySlackPs(reduction) >= extra_ps + noise_ps;
}

int
analyticMaxSafeReduction(const CoreSiliconParams &core, double extra_ps,
                         double noise_ps)
{
    // Safety is monotone in the reduction (every disabled segment has
    // positive delay), so scan upward until the first violation.
    int best = 0;
    for (int k = 1; k <= core.presetSteps; ++k) {
        if (!analyticSafe(core, k, extra_ps, noise_ps))
            break;
        best = k;
    }
    return best;
}

} // namespace atmsim::variation
