#include "chip/atm_core.h"

#include <algorithm>

#include "circuit/constants.h"
#include "util/logging.h"
#include "util/units.h"

namespace atmsim::chip {

const char *
coreModeName(CoreMode mode)
{
    switch (mode) {
      case CoreMode::AtmOverclock: return "atm";
      case CoreMode::FixedFrequency: return "fixed";
      case CoreMode::Gated: return "gated";
    }
    return "?";
}

AtmCore::AtmCore(const variation::CoreSiliconParams *silicon,
                 const circuit::DelayModel *model,
                 const dpll::DpllParams &dpll_params)
    : silicon_(silicon), model_(model), bank_(silicon, model),
      dpll_(dpll_params), fixedMhz_(circuit::kStaticMarginMhz)
{
    if (!silicon || !model)
        util::panic("AtmCore constructed with null silicon or model");
    bank_.setReduction(0);
    dpll_.reset(util::mhzToPs(circuit::kDefaultAtmIdleMhz));
}

void
AtmCore::setMode(CoreMode mode)
{
    mode_ = mode;
}

void
AtmCore::setFixedFrequencyMhz(double f_mhz)
{
    if (f_mhz <= 0.0)
        util::fatal("fixed frequency must be positive, got ", f_mhz);
    fixedMhz_ = f_mhz;
}

void
AtmCore::setCpmReduction(int steps)
{
    bank_.setReduction(steps);
}

void
AtmCore::resetClock(double v, double t_c)
{
    dpll_.reset(util::mhzToPs(steadyFrequencyMhz(v, t_c)));
    vSlow_ = v;
    vSlowValid_ = true;
}

void
AtmCore::stepControl(double now_ns, double v, double t_c)
{
    // Track the slow (post-transient) local voltage; the gap between
    // it and the instantaneous voltage is the droop excursion.
    if (!vSlowValid_) {
        vSlow_ = v;
        vSlowValid_ = true;
    } else {
        constexpr double alpha = 0.0015; // ~150 ns at 0.2 ns steps
        vSlow_ += alpha * (v - vSlow_);
    }

    if (mode_ != CoreMode::AtmOverclock)
        return;
    const int margin = bank_.worstCount(dpll_.periodPs(), v, t_c);
    dpll_.observe(now_ns, margin);
}

bool
AtmCore::timingMet(double v, double t_c, double extra_path_ps,
                   double noise_ps) const
{
    if (mode_ == CoreMode::Gated)
        return true;
    return timingDeficitPs(v, t_c, extra_path_ps, noise_ps) <= 0.0;
}

double
AtmCore::timingDeficitPs(double v, double t_c, double extra_path_ps,
                         double noise_ps) const
{
    // The real paths see the droop excursion amplified by the core's
    // local vulnerability (local grid and response effects the shared
    // node does not capture).
    double v_eff = v;
    if (vSlowValid_) {
        v_eff = vSlow_
              - silicon_->didtVulnerability * (vSlow_ - v);
        v_eff = std::max(v_eff, 0.6);
    }
    const double real = silicon_->speedFactor
                      * model_->factor(v_eff, t_c)
                      * (silicon_->realPathIdlePs + extra_path_ps)
                      + noise_ps;
    return real - periodPs();
}

double
AtmCore::periodPs() const
{
    switch (mode_) {
      case CoreMode::AtmOverclock:
        return dpll_.periodPs();
      case CoreMode::FixedFrequency:
        return util::mhzToPs(fixedMhz_);
      case CoreMode::Gated:
        return util::mhzToPs(circuit::kPStateMinMhz);
    }
    util::panic("unreachable core mode");
}

double
AtmCore::frequencyMhz() const
{
    return util::psToMhz(periodPs());
}

double
AtmCore::steadyFrequencyMhz(double v, double t_c) const
{
    switch (mode_) {
      case CoreMode::AtmOverclock:
        return silicon_->atmFrequencyMhz(bank_.reduction(),
                                         model_->factor(v, t_c));
      case CoreMode::FixedFrequency:
        return fixedMhz_;
      case CoreMode::Gated:
        return 0.0;
    }
    util::panic("unreachable core mode");
}

} // namespace atmsim::chip
