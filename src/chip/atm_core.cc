#include "chip/atm_core.h"

#include <algorithm>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::chip {

const char *
coreModeName(CoreMode mode)
{
    switch (mode) {
      case CoreMode::AtmOverclock: return "atm";
      case CoreMode::FixedFrequency: return "fixed";
      case CoreMode::Gated: return "gated";
    }
    return "?";
}

AtmCore::AtmCore(const variation::CoreSiliconParams *silicon,
                 const circuit::DelayModel *model,
                 const dpll::DpllParams &dpll_params)
    : silicon_(silicon), model_(model), bank_(silicon, model),
      dpll_(dpll_params), fixedMhz_(circuit::kStaticMarginMhz)
{
    if (!silicon || !model)
        util::panic("AtmCore constructed with null silicon or model");
    bank_.setReduction(CpmSteps{0});
    dpll_.reset(util::periodOf(circuit::kDefaultAtmIdleMhz));
}

void
AtmCore::setMode(CoreMode mode)
{
    mode_ = mode;
}

void
AtmCore::setFixedFrequencyMhz(Mhz f)
{
    if (f <= Mhz{0.0})
        util::fatal("fixed frequency must be positive, got ", f.value());
    fixedMhz_ = f;
}

void
AtmCore::setCpmReduction(CpmSteps steps)
{
    bank_.setReduction(steps);
}

void
AtmCore::resetClock(Volts v, Celsius t)
{
    dpll_.reset(util::periodOf(steadyFrequencyMhz(v, t)));
    vSlow_ = v;
    vSlowValid_ = true;
    lastWorstCount_ = -1;
}

// atmlint: contract(engine_step)
void
AtmCore::stepControl(Nanoseconds now, Volts v, Celsius t)
{
    // Track the slow (post-transient) local voltage; the gap between
    // it and the instantaneous voltage is the droop excursion.
    if (!vSlowValid_) {
        vSlow_ = v;
        vSlowValid_ = true;
    } else {
        // ~150 ns time constant at 0.2 ns steps.
        vSlow_ += (v - vSlow_) * kVSlowTrackingAlpha;
    }

    if (mode_ != CoreMode::AtmOverclock)
        return;
    const int margin = bank_.worstCount(dpll_.periodPs(), v, t);
    lastWorstCount_ = margin;
    dpll_.observe(now, margin);
}

// atmlint: contract(engine_step)
bool
AtmCore::timingMet(Volts v, Celsius t, Picoseconds extra_path,
                   Picoseconds noise) const
{
    if (mode_ == CoreMode::Gated)
        return true;
    return timingDeficitPs(v, t, extra_path, noise) <= Picoseconds{0.0};
}

Picoseconds
AtmCore::timingDeficitPs(Volts v, Celsius t, Picoseconds extra_path,
                         Picoseconds noise) const
{
    // The real paths see the droop excursion amplified by the core's
    // local vulnerability (local grid and response effects the shared
    // node does not capture).
    Volts v_eff = v;
    if (vSlowValid_) {
        v_eff = vSlow_ - (vSlow_ - v) * silicon_->didtVulnerability;
        v_eff = std::max(v_eff, Volts{0.6});
    }
    const Picoseconds real =
        (Picoseconds{silicon_->realPathIdlePs} + extra_path)
            * (silicon_->speedFactor * model_->factor(v_eff, t))
        + noise;
    return real - periodPs();
}

ControlState
AtmCore::exportControlState() const
{
    ControlState state;
    state.vSlowV = vSlow_.value();
    state.vSlowValid = vSlowValid_;
    state.lastWorstCount = lastWorstCount_;
    return state;
}

void
AtmCore::importControlState(const ControlState &state)
{
    vSlow_ = Volts{state.vSlowV};
    vSlowValid_ = state.vSlowValid;
    lastWorstCount_ = state.lastWorstCount;
}

Picoseconds
AtmCore::periodPs() const
{
    switch (mode_) {
      case CoreMode::AtmOverclock:
        return dpll_.periodPs();
      case CoreMode::FixedFrequency:
        return util::periodOf(fixedMhz_);
      case CoreMode::Gated:
        return util::periodOf(circuit::kPStateMinMhz);
    }
    util::panic("unreachable core mode");
}

Mhz
AtmCore::frequencyMhz() const
{
    return util::frequencyOf(periodPs());
}

Mhz
AtmCore::steadyFrequencyMhz(Volts v, Celsius t) const
{
    switch (mode_) {
      case CoreMode::AtmOverclock:
        return silicon_->atmFrequencyMhz(bank_.reduction(),
                                         model_->factor(v, t));
      case CoreMode::FixedFrequency:
        return fixedMhz_;
      case CoreMode::Gated:
        return Mhz{0.0};
    }
    util::panic("unreachable core mode");
}

} // namespace atmsim::chip
