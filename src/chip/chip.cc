#include "chip/chip.h"

#include <algorithm>
#include <cmath>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::chip {

using util::Amps;
using util::Watts;

Mhz
ChipSteadyState::minActiveFreqMhz() const
{
    Mhz min_f{0.0};
    bool any = false;
    for (Mhz f : coreFreqMhz) {
        if (f <= Mhz{0.0})
            continue; // gated
        min_f = any ? std::min(min_f, f) : f;
        any = true;
    }
    return any ? min_f : Mhz{0.0};
}

Mhz
ChipSteadyState::maxFreqMhz() const
{
    Mhz max_f{0.0};
    for (Mhz f : coreFreqMhz)
        max_f = std::max(max_f, f);
    return max_f;
}

Chip::Chip(variation::ChipSilicon silicon, const ChipConfig &config)
    : silicon_(std::move(silicon)), config_(config),
      model_(std::make_unique<circuit::DelayModel>(
          circuit::DelayModel::makeDefault())),
      pdn_(config.pdnParams,
           pdn::Vrm(config.vrmSetpointV, config.vrmLoadLineOhm),
           static_cast<int>(silicon_.cores.size())),
      thermal_(config.thermalParams,
               static_cast<int>(silicon_.cores.size())),
      power_(config.powerParams)
{
    silicon_.validate();
    cores_.reserve(silicon_.cores.size());
    for (const auto &core_silicon : silicon_.cores)
        cores_.emplace_back(&core_silicon, model_.get(), config.dpllParams);
    assignments_.resize(silicon_.cores.size());
}

AtmCore &
Chip::core(int index)
{
    if (index < 0 || index >= coreCount())
        util::fatal("chip ", name(), ": core index ", index,
                    " out of range");
    return cores_[static_cast<std::size_t>(index)];
}

const AtmCore &
Chip::core(int index) const
{
    if (index < 0 || index >= coreCount())
        util::fatal("chip ", name(), ": core index ", index,
                    " out of range");
    return cores_[static_cast<std::size_t>(index)];
}

void
Chip::scaleCoreSpeed(int core_index, double factor)
{
    if (core_index < 0 || core_index >= coreCount())
        util::fatal("scaleCoreSpeed: core ", core_index, " out of range");
    if (factor <= 0.0)
        util::fatal("scaleCoreSpeed: factor must be positive, got ",
                    factor);
    // The AtmCore and its CPMs hold pointers into silicon_, so the
    // change propagates to every delay computation immediately.
    silicon_.cores[static_cast<std::size_t>(core_index)].speedFactor
        *= factor;
}

void
Chip::assignWorkload(int core_index, const workload::WorkloadTraits *traits,
                     int threads)
{
    if (core_index < 0 || core_index >= coreCount())
        util::fatal("assignWorkload: core ", core_index, " out of range");
    CoreAssignment &slot =
        assignments_[static_cast<std::size_t>(core_index)];
    if (!traits) {
        slot = CoreAssignment{};
        return;
    }
    slot.traits = traits;
    slot.threads = threads > 0 ? threads : traits->defaultThreads;
    if (slot.threads > circuit::kSmtWays)
        util::fatal("assignWorkload: ", slot.threads, " threads exceed SMT",
                    circuit::kSmtWays);
}

void
Chip::clearAssignments()
{
    for (auto &slot : assignments_)
        slot = CoreAssignment{};
}

const CoreAssignment &
Chip::assignment(int core_index) const
{
    if (core_index < 0 || core_index >= coreCount())
        util::fatal("assignment: core ", core_index, " out of range");
    return assignments_[static_cast<std::size_t>(core_index)];
}

Picoseconds
Chip::pathExposurePs(const variation::CoreSiliconParams &core,
                     const workload::WorkloadTraits &traits)
{
    switch (traits.suite) {
      case workload::Suite::Idle:
        return Picoseconds{0.0};
      case workload::Suite::UBench:
        return Picoseconds{core.ubenchExtraPs};
      default:
        return Picoseconds{core.loadExposurePs};
    }
}

// Iterative DC settle, run once before the engine's step loop.
// atmlint: contract(cold)
ChipSteadyState
Chip::solveSteadyState() const
{
    const int n = coreCount();
    ChipSteadyState st;
    st.coreFreqMhz.assign(static_cast<std::size_t>(n), Mhz{0.0});
    st.coreVoltageV.assign(static_cast<std::size_t>(n),
                           circuit::kVddNominal);
    st.corePowerW.assign(static_cast<std::size_t>(n), Watts{0.0});
    st.coreTempC.assign(static_cast<std::size_t>(n),
                        circuit::kTempNominal);

    // Initial guess: nominal environment.
    for (int c = 0; c < n; ++c) {
        st.coreFreqMhz[static_cast<std::size_t>(c)] =
            core(c).steadyFrequencyMhz(circuit::kVddNominal,
                                       circuit::kTempNominal);
    }

    for (int iter = 0; iter < 60; ++iter) {
        // Power from the current frequency/voltage/temperature guess.
        Watts total_power{0.0};
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            const CoreAssignment &slot = assignments_[ci];
            Watts p;
            if (core(c).mode() == CoreMode::Gated) {
                p = Watts{0.25}; // gated residual
            } else {
                const Watts activity = slot.idle()
                    ? Watts{0.0}
                    : Watts{slot.traits->coreActivityW(slot.threads)
                            * slot.traits->avgActivityScale()};
                p = power_.coreTotalW(activity, st.coreFreqMhz[ci],
                                      st.coreVoltageV[ci],
                                      st.coreTempC[ci]);
            }
            st.corePowerW[ci] = p;
            total_power += p;
        }
        const Volts grid_guess = st.gridVoltageV > Volts{0.0}
                               ? st.gridVoltageV
                               : config_.vrmSetpointV;
        const Watts uncore = power_.uncoreW(grid_guess);
        total_power += uncore;
        st.chipPowerW = total_power;

        // Voltages from the DC PDN solution.
        const Amps total_current =
            power::PowerModel::currentA(total_power, grid_guess);
        st.gridVoltageV = pdn_.dcGridV(total_current);
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            const Amps core_current = power::PowerModel::currentA(
                st.corePowerW[ci], st.gridVoltageV);
            st.coreVoltageV[ci] = st.gridVoltageV
                                - Volts{config_.pdnParams.coreLocalResOhm
                                        * core_current.value()};
        }

        // Temperatures from the thermal steady state.
        st.packageTempC = Celsius{config_.thermalParams.ambientC
                                  + config_.thermalParams.packageResKpW
                                  * total_power.value()};
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            st.coreTempC[ci] = st.packageTempC
                             + Celsius{config_.thermalParams.coreResKpW
                                       * st.corePowerW[ci].value()};
        }

        // Frequencies from the ATM steady state; check convergence.
        Mhz max_delta{0.0};
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            const Mhz f = core(c).steadyFrequencyMhz(
                st.coreVoltageV[ci], st.coreTempC[ci]);
            const Mhz delta = f >= st.coreFreqMhz[ci]
                            ? f - st.coreFreqMhz[ci]
                            : st.coreFreqMhz[ci] - f;
            max_delta = std::max(max_delta, delta);
            st.coreFreqMhz[ci] = f;
        }
        if (max_delta < Mhz{0.01})
            break;
    }
    return st;
}

} // namespace atmsim::chip
