#include "chip/pstate.h"

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::chip {

const std::vector<double> &
pstateTableMhz()
{
    static const std::vector<double> table = [] {
        std::vector<double> t;
        for (double f = circuit::kStaticMarginMhz;
             f >= circuit::kPStateMinMhz - 1.0; f -= 300.0) {
            t.push_back(f);
        }
        return t;
    }();
    return table;
}

double
highestPStateMhz()
{
    return pstateTableMhz().front();
}

double
lowestPStateMhz()
{
    return pstateTableMhz().back();
}

double
pstateAtOrBelowMhz(double f_mhz)
{
    for (double f : pstateTableMhz()) {
        if (f <= f_mhz + 1e-9)
            return f;
    }
    return lowestPStateMhz();
}

} // namespace atmsim::chip
