#include "chip/pstate.h"

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::chip {

const std::vector<util::Mhz> &
pstateTableMhz()
{
    static const std::vector<util::Mhz> table = [] {
        std::vector<util::Mhz> t;
        for (util::Mhz f = circuit::kStaticMarginMhz;
             f >= circuit::kPStateMinMhz - util::Mhz{1.0};
             f -= util::Mhz{300.0}) {
            t.push_back(f);
        }
        return t;
    }();
    return table;
}

util::Mhz
highestPStateMhz()
{
    return pstateTableMhz().front();
}

util::Mhz
lowestPStateMhz()
{
    return pstateTableMhz().back();
}

util::Mhz
pstateAtOrBelowMhz(util::Mhz f_req)
{
    for (util::Mhz f : pstateTableMhz()) {
        if (f <= f_req + util::Mhz{1e-9})
            return f;
    }
    return lowestPStateMhz();
}

} // namespace atmsim::chip
