/**
 * @file
 * The two-socket server: a pair of chips with independent power
 * delivery (each socket has its own VRM), mirroring the experimental
 * platform of Sec. II.
 */

#pragma once

#include <memory>
#include <vector>

#include "chip/chip.h"

namespace atmsim::chip {

/** The two-socket POWER7+ class server. */
class System
{
  public:
    /**
     * @param chips Per-chip silicon (one entry per socket).
     * @param config Shared chip configuration.
     */
    explicit System(std::vector<variation::ChipSilicon> chips,
                    const ChipConfig &config = {});

    /** Build the paper-calibrated reference server. */
    static System makeReference(const ChipConfig &config = {});

    int chipCount() const { return static_cast<int>(chips_.size()); }
    Chip &chip(int index);
    const Chip &chip(int index) const;

    /** Total logical core count across sockets. */
    int totalCores() const;

    /**
     * Locate a core by its global name ("P1C3"); fatal() if unknown.
     *
     * @return (chip index, core index).
     */
    std::pair<int, int> findCore(const std::string &name) const;

  private:
    std::vector<std::unique_ptr<Chip>> chips_;
};

} // namespace atmsim::chip
