/**
 * @file
 * One processor chip: eight AtmCores over a shared power delivery
 * network, thermal stack and power model, plus workload assignments.
 * Provides the analytic steady-state solver (the closed-form
 * counterpart of a long engine run) used by the predictors and the
 * scheduler.
 */

#pragma once

#include <memory>
#include <vector>

#include "chip/atm_core.h"
#include "circuit/delay_model.h"
#include "pdn/pdn_network.h"
#include "power/power_model.h"
#include "thermal/thermal_model.h"
#include "variation/core_silicon.h"
#include "workload/workload.h"

namespace atmsim::chip {

/** Electrical, thermal and control configuration of a chip. */
struct ChipConfig
{
    pdn::PdnParams pdnParams;
    thermal::ThermalParams thermalParams;
    power::PowerParams powerParams;
    dpll::DpllParams dpllParams;

    /**
     * VRM setpoint. Slightly above the nominal 1.25 V so that the
     * idle IR drop lands the cores at the nominal voltage, matching
     * the paper's 4.2 GHz p-state operating point.
     */
    util::Volts vrmSetpointV{1.267};

    /** VRM load-line resistance (ohm). */
    double vrmLoadLineOhm = 0.22e-3;
};

/** Workload assignment of one core. */
struct CoreAssignment
{
    const workload::WorkloadTraits *traits = nullptr; ///< null = idle
    int threads = 0;

    bool idle() const { return traits == nullptr || threads == 0; }
};

/** Steady-state operating point of a chip. */
struct ChipSteadyState
{
    std::vector<Mhz> coreFreqMhz;
    std::vector<Volts> coreVoltageV;
    std::vector<util::Watts> corePowerW;
    std::vector<Celsius> coreTempC;
    Volts gridVoltageV{0.0};
    util::Watts chipPowerW{0.0};
    Celsius packageTempC{0.0};

    /** Frequency of the slowest non-gated core. */
    Mhz minActiveFreqMhz() const;

    /** Frequency of the fastest core. */
    Mhz maxFreqMhz() const;
};

/** A processor chip. */
class Chip
{
  public:
    /**
     * @param silicon Per-core silicon parameters (copied in).
     * @param config Chip configuration.
     */
    explicit Chip(variation::ChipSilicon silicon,
                  const ChipConfig &config = {});

    Chip(const Chip &) = delete;
    Chip &operator=(const Chip &) = delete;

    /** Chip name ("P0", "P1", ...). */
    const std::string &name() const { return silicon_.name; }

    int coreCount() const { return static_cast<int>(cores_.size()); }
    AtmCore &core(int index);
    const AtmCore &core(int index) const;

    /** Per-core silicon. */
    const variation::ChipSilicon &silicon() const { return silicon_; }

    /**
     * Fault injection: scale one core's silicon speed in place (an
     * abrupt aging jump, e.g. BTI shift after a thermal event). Both
     * the real paths and the CPM canaries slow together, which is
     * exactly the tracking property ATM relies on. Revert by applying
     * the reciprocal factor.
     */
    void scaleCoreSpeed(int core_index, double factor);

    // --- Workload placement --------------------------------------------

    /**
     * Assign a workload to a core.
     *
     * @param core_index Core to run on.
     * @param traits Workload (nullptr to idle the core).
     * @param threads SMT threads (0 uses the workload's default).
     */
    void assignWorkload(int core_index,
                        const workload::WorkloadTraits *traits,
                        int threads = 0);

    /** Idle all cores. */
    void clearAssignments();

    const CoreAssignment &assignment(int core_index) const;

    // --- Analytics ------------------------------------------------------

    /**
     * Solve the coupled frequency/voltage/power/temperature fixed
     * point for the current assignments and core configurations.
     * This is the closed-form steady state an engine run converges
     * to between di/dt events.
     */
    ChipSteadyState solveSteadyState() const;

    // --- Shared infrastructure -------------------------------------------

    pdn::PdnNetwork &pdn() { return pdn_; }
    const pdn::PdnNetwork &pdn() const { return pdn_; }
    thermal::ThermalModel &thermal() { return thermal_; }
    const power::PowerModel &powerModel() const { return power_; }
    const circuit::DelayModel &delayModel() const { return *model_; }
    const ChipConfig &config() const { return config_; }

    /**
     * Scenario path exposure of a workload on a core: which of the
     * core's manufactured exposures the workload's instruction stream
     * activates (none when idle, the uBench exposure for uBench, the
     * full load exposure for realistic workloads and stressmarks).
     */
    static Picoseconds
    pathExposurePs(const variation::CoreSiliconParams &core,
                   const workload::WorkloadTraits &traits);

  private:
    variation::ChipSilicon silicon_;
    ChipConfig config_;
    std::unique_ptr<circuit::DelayModel> model_;
    std::vector<AtmCore> cores_;
    std::vector<CoreAssignment> assignments_;
    pdn::PdnNetwork pdn_;
    thermal::ThermalModel thermal_;
    power::PowerModel power_;
};

} // namespace atmsim::chip
