#include "chip/system.h"

#include "util/logging.h"
#include "variation/reference_chips.h"

namespace atmsim::chip {

System::System(std::vector<variation::ChipSilicon> chips,
               const ChipConfig &config)
{
    if (chips.empty())
        util::fatal("system needs at least one chip");
    for (auto &silicon : chips)
        chips_.push_back(std::make_unique<Chip>(std::move(silicon), config));
}

System
System::makeReference(const ChipConfig &config)
{
    return System(variation::makeReferenceServer(), config);
}

Chip &
System::chip(int index)
{
    if (index < 0 || index >= chipCount())
        util::fatal("chip index ", index, " out of range");
    return *chips_[static_cast<std::size_t>(index)];
}

const Chip &
System::chip(int index) const
{
    if (index < 0 || index >= chipCount())
        util::fatal("chip index ", index, " out of range");
    return *chips_[static_cast<std::size_t>(index)];
}

int
System::totalCores() const
{
    int total = 0;
    for (const auto &c : chips_)
        total += c->coreCount();
    return total;
}

std::pair<int, int>
System::findCore(const std::string &name) const
{
    for (int p = 0; p < chipCount(); ++p) {
        const Chip &c = chip(p);
        for (int i = 0; i < c.coreCount(); ++i) {
            if (c.core(i).name() == name)
                return {p, i};
        }
    }
    util::fatal("unknown core '", name, "'");
}

} // namespace atmsim::chip
