/**
 * @file
 * One out-of-order core with its ATM machinery: the five-site CPM
 * bank, the per-core DPLL, and the real timing paths the canaries
 * protect. This is the unit the paper fine-tunes.
 */

#pragma once

#include "circuit/delay_model.h"
#include "cpm/cpm_bank.h"
#include "dpll/dpll.h"
#include "util/quantity.h"
#include "variation/core_silicon.h"

namespace atmsim::chip {

using util::Celsius;
using util::CpmSteps;
using util::Mhz;
using util::Nanoseconds;
using util::Picoseconds;
using util::Volts;

/** Operating mode of a core. */
enum class CoreMode {
    AtmOverclock,   ///< ATM converts reclaimed margin into frequency.
    FixedFrequency, ///< Static timing margin at a fixed p-state.
    Gated,          ///< Power gated (off).
};

/** Printable mode name. */
const char *coreModeName(CoreMode mode);

/**
 * EWMA coefficient of the slow-tracked local voltage reference the
 * timing model measures droop excursions against. Shared between
 * AtmCore::stepControl and the engine's SoA control kernel, which
 * must replicate the tracking arithmetic bit for bit.
 */
inline constexpr double kVSlowTrackingAlpha = 0.0015;

/**
 * Snapshot of a core's control-loop tracking state (the part of
 * AtmCore the engine's SoA mirror owns between sync points; the DPLL
 * state travels separately via dpll::DpllState).
 */
struct ControlState
{
    double vSlowV = 0.0;
    bool vSlowValid = false;
    int lastWorstCount = -1;
};

/** A core instance: silicon + CPM bank + DPLL. */
class AtmCore
{
  public:
    /**
     * @param silicon Core silicon parameters (not owned; must outlive
     *        this core).
     * @param model Shared delay model (not owned).
     * @param dpll_params Control-loop parameters.
     */
    AtmCore(const variation::CoreSiliconParams *silicon,
            const circuit::DelayModel *model,
            const dpll::DpllParams &dpll_params = {});

    /** Core name, e.g. "P0C3". */
    const std::string &name() const { return silicon_->name; }

    // --- Configuration -------------------------------------------------

    /** Set the operating mode. */
    void setMode(CoreMode mode);
    CoreMode mode() const { return mode_; }

    /** Set the fixed frequency used in FixedFrequency mode. */
    void setFixedFrequencyMhz(Mhz f);
    Mhz fixedFrequencyMhz() const { return fixedMhz_; }

    /**
     * Program the CPM inserted-delay reduction (the fine-tuning knob).
     * 0 restores the factory default ATM behaviour.
     */
    void setCpmReduction(CpmSteps steps);
    CpmSteps cpmReduction() const { return bank_.reduction(); }

    // --- Engine interface ----------------------------------------------

    /**
     * Reset the clock to the steady state for the given environment
     * (used at the start of an engine run).
     */
    void resetClock(Volts v, Celsius t);

    /**
     * Advance the control loop: sample the CPM bank against the
     * current period and let the DPLL adjust.
     *
     * @param now Simulation time.
     * @param v Local supply voltage.
     * @param t Local temperature.
     */
    void stepControl(Nanoseconds now, Volts v, Celsius t);

    /**
     * Check whether the real critical path meets timing this instant.
     *
     * The transient part of the voltage excursion (relative to the
     * slow-tracked local voltage) is amplified by the core's di/dt
     * vulnerability: vulnerable cores' real paths see deeper local
     * droops than the shared grid reports, which is what their larger
     * characterization rollbacks reflect.
     *
     * @param v Local supply voltage.
     * @param t Local temperature.
     * @param extra_path Scenario path exposure (nominal).
     * @param noise This run's timing noise.
     * @return true when timing is met (no violation).
     */
    bool timingMet(Volts v, Celsius t, Picoseconds extra_path,
                   Picoseconds noise) const;

    /**
     * Signed timing deficit: how far the real path misses the current
     * period under the same model timingMet() uses. Positive means a
     * violation.
     */
    Picoseconds timingDeficitPs(Volts v, Celsius t, Picoseconds extra_path,
                                Picoseconds noise) const;

    /** Current clock period. */
    Picoseconds periodPs() const;

    /** Current clock frequency. */
    Mhz frequencyMhz() const;

    /** Emergency engagements since the last resetClock(). */
    long emergencyCount() const { return dpll_.emergencyCount(); }

    /**
     * Worst CPM count seen by the last stepControl() in ATM mode (the
     * margin the DPLL acted on); -1 before the first control step.
     * Sampled by the engine's metric histograms without re-reading
     * the bank.
     */
    int lastWorstCount() const { return lastWorstCount_; }

    /** Export the control tracking state (SoA mirror handshake). */
    [[nodiscard]] ControlState exportControlState() const;

    /** Restore a state from exportControlState() (lossless round
     *  trip). */
    void importControlState(const ControlState &state);

    // --- Analytic interface --------------------------------------------

    /**
     * Steady-state frequency under the given environment, from the
     * closed-form ATM model (or the fixed frequency / 0 when gated).
     */
    Mhz steadyFrequencyMhz(Volts v, Celsius t) const;

    const variation::CoreSiliconParams &silicon() const
    {
        return *silicon_;
    }
    cpm::CpmBank &cpmBank() { return bank_; }
    const cpm::CpmBank &cpmBank() const { return bank_; }
    dpll::Dpll &dpll() { return dpll_; }
    const dpll::Dpll &dpll() const { return dpll_; }

  private:
    const variation::CoreSiliconParams *silicon_;
    const circuit::DelayModel *model_;
    cpm::CpmBank bank_;
    dpll::Dpll dpll_;
    CoreMode mode_ = CoreMode::AtmOverclock;
    Mhz fixedMhz_;

    /** Slow-tracked local voltage (reference for droop excursions). */
    Volts vSlow_{0.0};
    bool vSlowValid_ = false;

    /** Margin the DPLL last acted on (metrics sampling). */
    int lastWorstCount_ = -1;
};

} // namespace atmsim::chip
