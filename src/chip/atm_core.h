/**
 * @file
 * One out-of-order core with its ATM machinery: the five-site CPM
 * bank, the per-core DPLL, and the real timing paths the canaries
 * protect. This is the unit the paper fine-tunes.
 */

#pragma once

#include "circuit/delay_model.h"
#include "cpm/cpm_bank.h"
#include "dpll/dpll.h"
#include "variation/core_silicon.h"

namespace atmsim::chip {

/** Operating mode of a core. */
enum class CoreMode {
    AtmOverclock,   ///< ATM converts reclaimed margin into frequency.
    FixedFrequency, ///< Static timing margin at a fixed p-state.
    Gated,          ///< Power gated (off).
};

/** Printable mode name. */
const char *coreModeName(CoreMode mode);

/** A core instance: silicon + CPM bank + DPLL. */
class AtmCore
{
  public:
    /**
     * @param silicon Core silicon parameters (not owned; must outlive
     *        this core).
     * @param model Shared delay model (not owned).
     * @param dpll_params Control-loop parameters.
     */
    AtmCore(const variation::CoreSiliconParams *silicon,
            const circuit::DelayModel *model,
            const dpll::DpllParams &dpll_params = {});

    /** Core name, e.g. "P0C3". */
    const std::string &name() const { return silicon_->name; }

    // --- Configuration -------------------------------------------------

    /** Set the operating mode. */
    void setMode(CoreMode mode);
    CoreMode mode() const { return mode_; }

    /** Set the fixed frequency used in FixedFrequency mode (MHz). */
    void setFixedFrequencyMhz(double f_mhz);
    double fixedFrequencyMhz() const { return fixedMhz_; }

    /**
     * Program the CPM inserted-delay reduction (the fine-tuning knob).
     * 0 restores the factory default ATM behaviour.
     */
    void setCpmReduction(int steps);
    int cpmReduction() const { return bank_.reduction(); }

    // --- Engine interface ----------------------------------------------

    /**
     * Reset the clock to the steady state for the given environment
     * (used at the start of an engine run).
     */
    void resetClock(double v, double t_c);

    /**
     * Advance the control loop: sample the CPM bank against the
     * current period and let the DPLL adjust.
     *
     * @param now_ns Simulation time.
     * @param v Local supply voltage (V).
     * @param t_c Local temperature (degC).
     */
    void stepControl(double now_ns, double v, double t_c);

    /**
     * Check whether the real critical path meets timing this instant.
     *
     * The transient part of the voltage excursion (relative to the
     * slow-tracked local voltage) is amplified by the core's di/dt
     * vulnerability: vulnerable cores' real paths see deeper local
     * droops than the shared grid reports, which is what their larger
     * characterization rollbacks reflect.
     *
     * @param v Local supply voltage (V).
     * @param t_c Local temperature (degC).
     * @param extra_path_ps Scenario path exposure (nominal ps).
     * @param noise_ps This run's timing noise (ps).
     * @return true when timing is met (no violation).
     */
    bool timingMet(double v, double t_c, double extra_path_ps,
                   double noise_ps) const;

    /**
     * Signed timing deficit (ps): how far the real path misses the
     * current period under the same model timingMet() uses. Positive
     * means a violation.
     */
    double timingDeficitPs(double v, double t_c, double extra_path_ps,
                           double noise_ps) const;

    /** Current clock period (ps). */
    double periodPs() const;

    /** Current clock frequency (MHz). */
    double frequencyMhz() const;

    /** Emergency engagements since the last resetClock(). */
    long emergencyCount() const { return dpll_.emergencyCount(); }

    // --- Analytic interface --------------------------------------------

    /**
     * Steady-state frequency under the given environment, from the
     * closed-form ATM model (or the fixed frequency / 0 when gated).
     */
    double steadyFrequencyMhz(double v, double t_c) const;

    const variation::CoreSiliconParams &silicon() const
    {
        return *silicon_;
    }
    cpm::CpmBank &cpmBank() { return bank_; }
    const cpm::CpmBank &cpmBank() const { return bank_; }
    dpll::Dpll &dpll() { return dpll_; }
    const dpll::Dpll &dpll() const { return dpll_; }

  private:
    const variation::CoreSiliconParams *silicon_;
    const circuit::DelayModel *model_;
    cpm::CpmBank bank_;
    dpll::Dpll dpll_;
    CoreMode mode_ = CoreMode::AtmOverclock;
    double fixedMhz_;

    /** Slow-tracked local voltage (reference for droop excursions). */
    double vSlow_ = 0.0;
    bool vSlowValid_ = false;
};

} // namespace atmsim::chip
