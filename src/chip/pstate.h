/**
 * @file
 * DVFS p-state table. The POWER7+ exposes coarse-grained p-states
 * from 2.1 to 4.2 GHz; ATM fine-tunes around the top p-state. In our
 * overclocking-only configuration V_dd is shared and fixed at the top
 * p-state voltage, so a p-state is a per-core frequency cap (this is
 * the throttling knob of Sec. VII-C).
 */

#pragma once

#include <vector>

#include "util/quantity.h"

namespace atmsim::chip {

/** @return P-state frequencies, highest first. */
const std::vector<util::Mhz> &pstateTableMhz();

/** Highest (nominal) p-state frequency. */
util::Mhz highestPStateMhz();

/** Lowest p-state frequency. */
util::Mhz lowestPStateMhz();

/** Closest p-state at or below the requested frequency. */
util::Mhz pstateAtOrBelowMhz(util::Mhz f);

} // namespace atmsim::chip
