/**
 * @file
 * The five-CPM bank of one core. The worst (smallest) of the five
 * site measurements is reported every cycle to the DPLL (Sec. II of
 * the paper). Fine-tuning programs all sites of a core by the same
 * reduction from their presets (Sec. III-A).
 */

#pragma once

#include <vector>

#include "cpm/cpm.h"

namespace atmsim::cpm {

/** Bank of CPM sites within one core. */
class CpmBank
{
  public:
    /**
     * @param core Core silicon parameters (not owned).
     * @param model Shared delay model (not owned).
     */
    CpmBank(const variation::CoreSiliconParams *core,
            const circuit::DelayModel *model);

    /**
     * Program a uniform delay reduction across all sites relative to
     * their presets. This is exactly the paper's fine-tuning knob.
     *
     * @param steps Reduction steps (>= 0); clamped per site at 0.
     */
    void setReduction(CpmSteps steps);

    /** Current reduction from the preset. */
    CpmSteps reduction() const { return reduction_; }

    /** Worst (minimum) output count across the bank this cycle. */
    int worstCount(Picoseconds period, Volts v, Celsius t) const;

    /** Largest monitored delay across the bank (controlling site). */
    Picoseconds worstMonitoredDelayPs(Volts v, Celsius t) const;

    /** Access a site. */
    const Cpm &site(int index) const;
    std::size_t siteCount() const { return sites_.size(); }

    // --- Fault injection -----------------------------------------------

    /** Pin one site's output count (stuck quantizer latch). */
    void injectStuckOutput(int site, int count);

    /** Make one site skip enabled inserted-delay segments. */
    void injectSkippedSegments(int site, int segments);

    /** Clear injected faults on every site. */
    void clearFaults();

    /** True while any site carries an injected fault. */
    bool anyFaulted() const;

    const variation::CoreSiliconParams &core() const { return *core_; }

  private:
    const variation::CoreSiliconParams *core_;
    const circuit::DelayModel *model_;
    std::vector<Cpm> sites_;
    CpmSteps reduction_{0};
};

} // namespace atmsim::cpm
