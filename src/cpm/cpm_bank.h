/**
 * @file
 * The five-CPM bank of one core. The worst (smallest) of the five
 * site measurements is reported every cycle to the DPLL (Sec. II of
 * the paper). Fine-tuning programs all sites of a core by the same
 * reduction from their presets (Sec. III-A).
 */

#pragma once

#include <vector>

#include "cpm/cpm.h"
#include "util/hotpath_annotations.h"

namespace atmsim::cpm {

/** Bank of CPM sites within one core. */
class CpmBank
{
  public:
    /**
     * @param core Core silicon parameters (not owned).
     * @param model Shared delay model (not owned).
     */
    CpmBank(const variation::CoreSiliconParams *core,
            const circuit::DelayModel *model);

    /**
     * Program a uniform delay reduction across all sites relative to
     * their presets. This is exactly the paper's fine-tuning knob.
     *
     * @param steps Reduction steps (>= 0); clamped per site at 0.
     */
    void setReduction(CpmSteps steps);

    /** Current reduction from the preset. */
    CpmSteps reduction() const { return reduction_; }

    /** Worst (minimum) output count across the bank this cycle. */
    int worstCount(Picoseconds period, Volts v, Celsius t) const;

    /** Largest monitored delay across the bank (controlling site). */
    Picoseconds worstMonitoredDelayPs(Volts v, Celsius t) const;

    /** Access a site. */
    const Cpm &site(int index) const;
    std::size_t siteCount() const { return sites_.size(); }

    // --- Fault injection -----------------------------------------------

    /** Pin one site's output count (stuck quantizer latch). */
    void injectStuckOutput(int site, int count);

    /** Make one site skip enabled inserted-delay segments. */
    void injectSkippedSegments(int site, int segments);

    /** Clear injected faults on every site. */
    void clearFaults();

    /** True while any site carries an injected fault. */
    bool anyFaulted() const;

    const variation::CoreSiliconParams &core() const { return *core_; }

    // --- SoA export ----------------------------------------------------

    /**
     * Flatten the bank for the engine's SoA kernels: per site, the
     * speed-scaled nominal delay (`Cpm::nominalPs() * speedFactor`,
     * the product the per-object path forms inside
     * Cpm::monitoredDelayPs) and the pinned output count (-1 while
     * the site is healthy, the stuck count while faulted). Both
     * output arrays receive siteCount() entries. Must be re-exported
     * after setReduction, fault injection, or an aging jump.
     */
    void exportSoa(double *nominal_speed, int *stuck_counts) const;

  private:
    const variation::CoreSiliconParams *core_;
    const circuit::DelayModel *model_;
    std::vector<Cpm> sites_;
    CpmSteps reduction_{0};
};

/**
 * Array-form CpmBank::worstCount() over the flattened site state from
 * exportSoa(). Replicates the per-object arithmetic operation for
 * operation (the SoA engine path is gated on bitwise identity):
 * per site, monitored = nominalSpeed * factor; slack = period -
 * monitored; count = floor(slack / (chainStep * factor * speed)),
 * saturated at the chain length, pinned while the site is stuck.
 *
 * @param nominal_speed   Per-site `nominalPs * speedFactor` array.
 * @param stuck_counts    Per-site pinned count, -1 while healthy.
 * @param site_count      Sites per core (>= 1).
 * @param periodPs        Clock period (raw ps).
 * @param delayFactor     DelayModel::factor(v, t) for this core.
 * @param effectiveStepPs Chain step delay scaled by
 *                        `delayFactor * speedFactor` -- constant
 *                        across the sites of a core, hoisted out.
 * @param chain_length    Quantizer saturation count.
 */
ATM_HOT_PATH(engine_step)
[[nodiscard]] inline int
worstCountSoa(const double *nominal_speed, const int *stuck_counts,
              int site_count, double periodPs, double delayFactor,
              double effectiveStepPs, int chain_length) noexcept
{
    int worst = 0;
    for (int s = 0; s < site_count; ++s) {
        int count;
        if (stuck_counts[s] >= 0) {
            count = stuck_counts[s];
        } else {
            const double slack = periodPs - nominal_speed[s] * delayFactor;
            if (slack <= 0.0) {
                count = 0;
            } else {
                count = static_cast<int>(slack / effectiveStepPs);
                if (chain_length < count)
                    count = chain_length;
            }
        }
        if (s == 0 || count < worst)
            worst = count;
    }
    return worst;
}

} // namespace atmsim::cpm
