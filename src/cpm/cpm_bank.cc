#include "cpm/cpm_bank.h"

#include <algorithm>

#include "circuit/constants.h"
#include "util/hotpath_annotations.h"
#include "util/logging.h"

namespace atmsim::cpm {

CpmBank::CpmBank(const variation::CoreSiliconParams *core,
                 const circuit::DelayModel *model)
    : core_(core), model_(model)
{
    if (!core)
        util::panic("CpmBank constructed with null core");
    sites_.reserve(circuit::kCpmSitesPerCore);
    for (int s = 0; s < circuit::kCpmSitesPerCore; ++s)
        sites_.emplace_back(core, model, s);
}

void
CpmBank::setReduction(CpmSteps steps)
{
    if (steps < CpmSteps{0})
        util::fatal("CPM reduction must be non-negative, got ",
                    steps.value());
    if (steps.value() > core_->presetSteps) {
        util::fatal("CPM reduction ", steps.value(), " exceeds preset ",
                    core_->presetSteps, " on core ", core_->name);
    }
    for (auto &site : sites_) {
        const int preset = core_->presetSteps
                         + core_->siteOffsets[site.siteIndex()];
        const int cfg = std::clamp(preset - steps.value(), 0,
                                   core_->maxConfig().value());
        site.setConfigSteps(CpmSteps{cfg});
    }
    reduction_ = steps;
}

ATM_HOT_PATH(engine_step)
int
CpmBank::worstCount(Picoseconds period, Volts v, Celsius t) const
{
    // One factor(v, t) evaluation for the whole scan: the model's
    // pow() dominated the engine's ATM phase when every site
    // re-derived it (twice) per step.
    const double f = model_->factor(v, t);
    int worst = sites_.front().outputCount(period, f);
    for (std::size_t s = 1; s < sites_.size(); ++s)
        worst = std::min(worst, sites_[s].outputCount(period, f));
    return worst;
}

Picoseconds
CpmBank::worstMonitoredDelayPs(Volts v, Celsius t) const
{
    const double f = model_->factor(v, t);
    Picoseconds worst = sites_.front().monitoredDelayPs(f);
    for (std::size_t s = 1; s < sites_.size(); ++s)
        worst = std::max(worst, sites_[s].monitoredDelayPs(f));
    return worst;
}

const Cpm &
CpmBank::site(int index) const
{
    if (index < 0 || index >= static_cast<int>(sites_.size()))
        util::fatal("CPM site ", index, " out of range");
    return sites_[static_cast<std::size_t>(index)];
}

void
CpmBank::injectStuckOutput(int site, int count)
{
    if (site < 0 || site >= static_cast<int>(sites_.size()))
        util::fatal("CPM fault site ", site, " out of range");
    sites_[static_cast<std::size_t>(site)].injectStuckOutput(count);
}

void
CpmBank::injectSkippedSegments(int site, int segments)
{
    if (site < 0 || site >= static_cast<int>(sites_.size()))
        util::fatal("CPM fault site ", site, " out of range");
    sites_[static_cast<std::size_t>(site)].injectSkippedSegments(segments);
}

void
CpmBank::clearFaults()
{
    for (auto &s : sites_)
        s.clearFaults();
}

void
CpmBank::exportSoa(double *nominal_speed, int *stuck_counts) const
{
    for (std::size_t s = 0; s < sites_.size(); ++s) {
        nominal_speed[s] = sites_[s].nominalPs() * core_->speedFactor;
        stuck_counts[s] =
            sites_[s].stuckActive() ? sites_[s].stuckOutputCount() : -1;
    }
}

bool
CpmBank::anyFaulted() const
{
    for (const auto &s : sites_) {
        if (s.faulted())
            return true;
    }
    return false;
}

} // namespace atmsim::cpm
