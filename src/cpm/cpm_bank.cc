#include "cpm/cpm_bank.h"

#include <algorithm>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::cpm {

CpmBank::CpmBank(const variation::CoreSiliconParams *core,
                 const circuit::DelayModel *model)
    : core_(core)
{
    if (!core)
        util::panic("CpmBank constructed with null core");
    sites_.reserve(circuit::kCpmSitesPerCore);
    for (int s = 0; s < circuit::kCpmSitesPerCore; ++s)
        sites_.emplace_back(core, model, s);
}

void
CpmBank::setReduction(int steps)
{
    if (steps < 0)
        util::fatal("CPM reduction must be non-negative, got ", steps);
    if (steps > core_->presetSteps) {
        util::fatal("CPM reduction ", steps, " exceeds preset ",
                    core_->presetSteps, " on core ", core_->name);
    }
    for (auto &site : sites_) {
        const int preset = core_->presetSteps
                         + core_->siteOffsets[site.siteIndex()];
        const int cfg = std::clamp(preset - steps, 0, core_->maxConfig());
        site.setConfigSteps(cfg);
    }
    reduction_ = steps;
}

int
CpmBank::worstCount(double period_ps, double v, double t_c) const
{
    int worst = sites_.front().outputCount(period_ps, v, t_c);
    for (std::size_t s = 1; s < sites_.size(); ++s)
        worst = std::min(worst, sites_[s].outputCount(period_ps, v, t_c));
    return worst;
}

double
CpmBank::worstMonitoredDelayPs(double v, double t_c) const
{
    double worst = sites_.front().monitoredDelayPs(v, t_c);
    for (std::size_t s = 1; s < sites_.size(); ++s)
        worst = std::max(worst, sites_[s].monitoredDelayPs(v, t_c));
    return worst;
}

const Cpm &
CpmBank::site(int index) const
{
    if (index < 0 || index >= static_cast<int>(sites_.size()))
        util::fatal("CPM site ", index, " out of range");
    return sites_[static_cast<std::size_t>(index)];
}

void
CpmBank::injectStuckOutput(int site, int count)
{
    if (site < 0 || site >= static_cast<int>(sites_.size()))
        util::fatal("CPM fault site ", site, " out of range");
    sites_[static_cast<std::size_t>(site)].injectStuckOutput(count);
}

void
CpmBank::injectSkippedSegments(int site, int segments)
{
    if (site < 0 || site >= static_cast<int>(sites_.size()))
        util::fatal("CPM fault site ", site, " out of range");
    sites_[static_cast<std::size_t>(site)].injectSkippedSegments(segments);
}

void
CpmBank::clearFaults()
{
    for (auto &s : sites_)
        s.clearFaults();
}

bool
CpmBank::anyFaulted() const
{
    for (const auto &s : sites_) {
        if (s.faulted())
            return true;
    }
    return false;
}

} // namespace atmsim::cpm
