#include "cpm/cpm.h"

#include <algorithm>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::cpm {

const char *
cpmSiteName(CpmSite site)
{
    switch (site) {
      case CpmSite::Ifu: return "IFU";
      case CpmSite::Isu: return "ISU";
      case CpmSite::Fxu: return "FXU";
      case CpmSite::Fpu: return "FPU";
      case CpmSite::Llc: return "LLC";
    }
    return "?";
}

Cpm::Cpm(const variation::CoreSiliconParams *core,
         const circuit::DelayModel *model, int site_index)
    : core_(core), model_(model),
      chain_(circuit::kInverterStepPs, 24), siteIndex_(site_index)
{
    if (!core || !model)
        util::panic("Cpm constructed with null core or model");
    if (site_index < 0 || site_index >= circuit::kCpmSitesPerCore)
        util::fatal("CPM site index ", site_index, " out of range");
    configSteps_ = std::min(core_->presetSteps
                            + core_->siteOffsets[site_index],
                            core_->maxConfig());
    if (site_index == 0) {
        synthScale_ = 1.0;
    } else {
        // Non-controlling sites sit at faster corners. Their local
        // paths are enough faster that, at any uniform reduction, the
        // extra preset offset never makes them report less slack than
        // the controlling site 0.
        const int offset = core_->siteOffsets[site_index];
        double max_gap = 0.0;
        for (int k = 0; k <= core_->presetSteps; ++k) {
            const int site_cfg = std::clamp(core_->presetSteps + offset - k,
                                            0, core_->maxConfig());
            const int base_cfg = std::clamp(core_->presetSteps - k, 0,
                                            core_->maxConfig());
            max_gap = std::max(max_gap,
                               core_->insertedDelayPs(site_cfg)
                               - core_->insertedDelayPs(base_cfg));
        }
        synthScale_ = 1.0 - (max_gap + 2.0 + 0.4 * site_index)
                    / core_->synthPathPs;
    }
}

void
Cpm::setConfigSteps(int steps)
{
    if (steps < 0 || steps > core_->maxConfig()) {
        util::fatal("CPM config ", steps, " outside [0, ",
                    core_->maxConfig(), "] on core ", core_->name);
    }
    configSteps_ = steps;
}

double
Cpm::monitoredDelayPs(double v, double t_c) const
{
    const int effective = std::max(configSteps_ - skippedSegments_, 0);
    const double nominal = core_->synthPathPs * synthScale_
                         + core_->insertedDelayPs(effective);
    return nominal * core_->speedFactor * model_->factor(v, t_c);
}

double
Cpm::slackPs(double period_ps, double v, double t_c) const
{
    return period_ps - monitoredDelayPs(v, t_c);
}

int
Cpm::outputCount(double period_ps, double v, double t_c) const
{
    if (stuckActive_)
        return stuckCount_;
    const double factor = model_->factor(v, t_c) * core_->speedFactor;
    return chain_.quantize(slackPs(period_ps, v, t_c), factor);
}

void
Cpm::injectStuckOutput(int count)
{
    if (count < 0)
        util::fatal("stuck CPM output must be non-negative, got ", count);
    stuckActive_ = true;
    stuckCount_ = count;
}

void
Cpm::injectSkippedSegments(int segments)
{
    if (segments < 0)
        util::fatal("skipped CPM segments must be non-negative, got ",
                    segments);
    skippedSegments_ = segments;
}

void
Cpm::clearFaults()
{
    stuckActive_ = false;
    stuckCount_ = 0;
    skippedSegments_ = 0;
}

} // namespace atmsim::cpm
