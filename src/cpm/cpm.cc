#include "cpm/cpm.h"

#include <algorithm>

#include "circuit/constants.h"
#include "util/hotpath_annotations.h"
#include "util/logging.h"

namespace atmsim::cpm {

const char *
cpmSiteName(CpmSite site)
{
    switch (site) {
      case CpmSite::Ifu: return "IFU";
      case CpmSite::Isu: return "ISU";
      case CpmSite::Fxu: return "FXU";
      case CpmSite::Fpu: return "FPU";
      case CpmSite::Llc: return "LLC";
    }
    return "?";
}

Cpm::Cpm(const variation::CoreSiliconParams *core,
         const circuit::DelayModel *model, int site_index)
    : core_(core), model_(model),
      chain_(circuit::kInverterStep, 24), siteIndex_(site_index)
{
    if (!core || !model)
        util::panic("Cpm constructed with null core or model");
    if (site_index < 0 || site_index >= circuit::kCpmSitesPerCore)
        util::fatal("CPM site index ", site_index, " out of range");
    configSteps_ = std::min(CpmSteps{core_->presetSteps
                                     + core_->siteOffsets[site_index]},
                            core_->maxConfig());
    if (site_index == 0) {
        synthScale_ = 1.0;
    } else {
        // Non-controlling sites sit at faster corners. Their local
        // paths are enough faster that, at any uniform reduction, the
        // extra preset offset never makes them report less slack than
        // the controlling site 0.
        const int offset = core_->siteOffsets[site_index];
        const int max_cfg = core_->maxConfig().value();
        double max_gap = 0.0;
        for (int k = 0; k <= core_->presetSteps; ++k) {
            const int site_cfg = std::clamp(core_->presetSteps + offset - k,
                                            0, max_cfg);
            const int base_cfg = std::clamp(core_->presetSteps - k, 0,
                                            max_cfg);
            max_gap = std::max(
                max_gap,
                (core_->insertedDelayPs(CpmSteps{site_cfg})
                 - core_->insertedDelayPs(CpmSteps{base_cfg})).value());
        }
        synthScale_ = 1.0 - (max_gap + 2.0 + 0.4 * site_index)
                    / core_->synthPathPs;
    }
    refreshNominal();
}

void
Cpm::refreshNominal()
{
    const CpmSteps effective =
        std::max(configSteps_ - CpmSteps{skippedSegments_}, CpmSteps{0});
    nominalPs_ = core_->synthPathPs * synthScale_
               + core_->insertedDelayPs(effective).value();
}

void
Cpm::setConfigSteps(CpmSteps steps)
{
    if (steps < CpmSteps{0} || steps > core_->maxConfig()) {
        util::fatal("CPM config ", steps.value(), " outside [0, ",
                    core_->maxConfig().value(), "] on core ", core_->name);
    }
    configSteps_ = steps;
    refreshNominal();
}

Picoseconds
Cpm::monitoredDelayPs(Volts v, Celsius t) const
{
    return monitoredDelayPs(model_->factor(v, t));
}

Picoseconds
Cpm::monitoredDelayPs(double delay_factor) const
{
    return Picoseconds{nominalPs_ * core_->speedFactor * delay_factor};
}

Picoseconds
Cpm::slackPs(Picoseconds period, Volts v, Celsius t) const
{
    return period - monitoredDelayPs(v, t);
}

int
Cpm::outputCount(Picoseconds period, Volts v, Celsius t) const
{
    return outputCount(period, model_->factor(v, t));
}

ATM_HOT_PATH(engine_step)
int
Cpm::outputCount(Picoseconds period, double delay_factor) const
{
    if (stuckActive_)
        return stuckCount_;
    const double factor = delay_factor * core_->speedFactor;
    return chain_.quantize(period - monitoredDelayPs(delay_factor),
                           factor);
}

void
Cpm::injectStuckOutput(int count)
{
    if (count < 0)
        util::fatal("stuck CPM output must be non-negative, got ", count);
    stuckActive_ = true;
    stuckCount_ = count;
}

void
Cpm::injectSkippedSegments(int segments)
{
    if (segments < 0)
        util::fatal("skipped CPM segments must be non-negative, got ",
                    segments);
    skippedSegments_ = segments;
    refreshNominal();
}

void
Cpm::clearFaults()
{
    stuckActive_ = false;
    stuckCount_ = 0;
    skippedSegments_ = 0;
    refreshNominal();
}

} // namespace atmsim::cpm
