/**
 * @file
 * Critical Path Monitor: the programmable canary circuit at the heart
 * of the ATM control loop (Fig. 4a of the paper). Three cascaded
 * stages: a programmable inserted delay (an inverter chain whose
 * enabled length is the fine-tuning knob), a synthetic path mimicking
 * real pipeline circuits, and a quantizing inverter chain that counts
 * the leftover slack each cycle.
 */

#pragma once

#include "circuit/delay_model.h"
#include "circuit/inverter_chain.h"
#include "util/quantity.h"
#include "variation/core_silicon.h"

namespace atmsim::cpm {

using util::Celsius;
using util::CpmSteps;
using util::Picoseconds;
using util::Volts;

/** CPM site locations within a core. */
enum class CpmSite {
    Ifu,  ///< Instruction fetch unit.
    Isu,  ///< Instruction scheduling unit.
    Fxu,  ///< Fixed point unit.
    Fpu,  ///< Floating point unit.
    Llc,  ///< Last level cache (separate clock domain on POWER7+).
};

/** Printable name of a CPM site. */
const char *cpmSiteName(CpmSite site);

/** One critical path monitor instance. */
class Cpm
{
  public:
    /**
     * @param core Owning core's silicon parameters (not owned).
     * @param model Shared delay model (not owned).
     * @param site_index Site position (0..kCpmSitesPerCore-1).
     */
    Cpm(const variation::CoreSiliconParams *core,
        const circuit::DelayModel *model, int site_index);

    /**
     * Program the inserted-delay configuration (enabled segments).
     * This is the service-processor command interface the paper uses
     * for fine-tuning.
     */
    void setConfigSteps(CpmSteps steps);

    /** Current inserted-delay configuration. */
    CpmSteps configSteps() const { return configSteps_; }

    /** Site position. */
    int siteIndex() const { return siteIndex_; }

    /**
     * Delay of the monitored structure (inserted delay + synthetic
     * path) under current conditions.
     */
    Picoseconds monitoredDelayPs(Volts v, Celsius t) const;

    /**
     * Same, given the precomputed voltage/temperature delay factor
     * (DelayModel::factor(v, t)). The factor is identical for every
     * site of a core at a given (v, t), so the bank evaluates it
     * once per scan instead of twice per site -- the hottest
     * per-step computation in the engine's ATM phase.
     */
    Picoseconds monitoredDelayPs(double delay_factor) const;

    /** Leftover slack within a clock period (may be negative). */
    Picoseconds slackPs(Picoseconds period, Volts v, Celsius t) const;

    /**
     * The CPM's per-cycle integer output: the inverter count that
     * quantizes the slack.
     */
    int outputCount(Picoseconds period, Volts v, Celsius t) const;

    /** Same, given the precomputed delay factor (see above). */
    int outputCount(Picoseconds period, double delay_factor) const;

    /** The quantizing chain (for unit conversion). */
    const circuit::InverterChain &chain() const { return chain_; }

    // --- Fault injection -----------------------------------------------

    /**
     * Pin the per-cycle output to a fixed count regardless of the real
     * slack (a stuck latch in the quantizing chain). A high stuck
     * count makes the site report phantom margin; a stuck zero holds
     * the loop in permanent emergency.
     */
    void injectStuckOutput(int count);

    /**
     * Skip enabled inserted-delay segments: the programmed
     * configuration reads back unchanged but the monitored delay is
     * short by the skipped segments, so the site over-reports slack.
     */
    void injectSkippedSegments(int segments);

    /** Clear all injected faults. */
    void clearFaults();

    /** True while any fault is injected. */
    bool faulted() const { return stuckActive_ || skippedSegments_ > 0; }

    // --- SoA export ----------------------------------------------------

    /** Cached zero-factor monitored delay (see nominalPs_). */
    double nominalPs() const { return nominalPs_; }

    /** True while the output is pinned by injectStuckOutput(). */
    bool stuckActive() const { return stuckActive_; }

    /** The pinned count while stuckActive() (undefined otherwise). */
    int stuckOutputCount() const { return stuckCount_; }

  private:
    /** Recompute the cached zero-factor monitored delay. */
    void refreshNominal();

    const variation::CoreSiliconParams *core_;
    const circuit::DelayModel *model_;
    circuit::InverterChain chain_;
    int siteIndex_;
    CpmSteps configSteps_;

    /**
     * Cached `synthPathPs * synthScale_ + insertedDelayPs(effective)`.
     * The sum only changes when the configuration or the fault state
     * changes (setConfigSteps / injectSkippedSegments / clearFaults),
     * yet the engine used to re-accumulate the segment vector every
     * 0.2 ns electrical step on all five sites of every core.
     */
    double nominalPs_ = 0.0;

    // Fault state (see injectStuckOutput / injectSkippedSegments).
    bool stuckActive_ = false;
    int stuckCount_ = 0;
    int skippedSegments_ = 0;

    /**
     * Local synthetic-path scale. Site 0 is the controlling site
     * (scale 1.0); the other sites sit at faster corners, which is
     * why the factory gave them larger preset offsets -- they monitor
     * slightly less delay and do not control the loop.
     */
    double synthScale_;
};

} // namespace atmsim::cpm
