#include "obs/flight_recorder.h"

#include <algorithm>

#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace atmsim::obs {

namespace {

// Indexed by FlightEventKind; order must match the enum.
constexpr const char *kKindNames[kFlightEventKinds] = {
    "margin",     "fmax",     "droop_enter", "droop_exit",
    "violation",  "quarantine", "fallback",  "recovery",
    "anomaly",    "fault_inject", "fault_revert",
    "fast_forward_enter", "fast_forward_exit",
};

} // namespace

const char *
flightEventKindName(FlightEventKind kind)
{
    // No panic here: this runs on the crash-dump signal path, where a
    // corrupted slot must degrade to a sentinel, not a reentrant abort.
    const auto i = static_cast<int>(kind);
    if (i < 0 || i >= kFlightEventKinds)
        return "unknown";
    return kKindNames[i];
}

bool
flightEventKindFromName(std::string_view name, FlightEventKind &out)
{
    for (int i = 0; i < kFlightEventKinds; ++i) {
        if (name == kKindNames[i]) {
            out = static_cast<FlightEventKind>(i);
            return true;
        }
    }
    return false;
}

FlightRecorder::FlightRecorder(int cores, int perCoreCapacity)
    : cores_(cores), capacity_(perCoreCapacity)
{
    if (cores_ <= 0)
        util::fatal("FlightRecorder: cores must be positive, got ", cores_);
    if (capacity_ <= 0)
        util::fatal("FlightRecorder: capacity must be positive, got ",
                    capacity_);
    events_.resize(static_cast<std::size_t>(cores_) *
                   static_cast<std::size_t>(capacity_));
    next_ = std::vector<std::atomic<long>>(
        static_cast<std::size_t>(cores_));
}

long
FlightRecorder::totalEvents() const
{
    long total = 0;
    for (const auto &n : next_)
        total += n.load(std::memory_order_relaxed);
    return total;
}

long
FlightRecorder::wrappedEvents() const
{
    long wrapped = 0;
    for (const auto &n : next_) {
        const long seen = n.load(std::memory_order_relaxed);
        wrapped += std::max(0L, seen - capacity_);
    }
    return wrapped;
}

void
FlightRecorder::writeJson(std::ostream &os) const
{
    // Signal-safe by construction: atomic loads, preallocated slots,
    // and the JsonWriter machinery already accepted on the bench
    // handler path. No locks, no per-event allocation.
    util::JsonWriter json(os);
    json.beginObject();
    json.field("schema", kDumpSchema);
    json.field("cores", static_cast<long>(cores_));
    json.field("capacity", static_cast<long>(capacity_));
    json.field("total_events", totalEvents());
    json.field("wrapped_events", wrappedEvents());
    json.field("dropped_events", droppedEvents());
    json.key("cores_events");
    json.beginArray();
    for (int c = 0; c < cores_; ++c) {
        const long seen =
            next_[static_cast<std::size_t>(c)].load(
                std::memory_order_relaxed);
        if (seen == 0)
            continue;
        const long kept = std::min(seen, static_cast<long>(capacity_));
        // Oldest retained event: sequence (seen - kept), which lives
        // at slot (seen - kept) % capacity.
        const long first = seen - kept;
        json.beginObject();
        json.field("core", static_cast<long>(c));
        json.field("recorded", seen);
        json.key("events");
        json.beginArray();
        for (long i = 0; i < kept; ++i) {
            const long slot = (first + i) % capacity_;
            const FlightEvent &ev =
                events_[static_cast<std::size_t>(c) *
                            static_cast<std::size_t>(capacity_) +
                        static_cast<std::size_t>(slot)];
            json.beginObject();
            json.field("kind", flightEventKindName(ev.kind));
            json.field("t_ns", ev.tNs);
            json.field("value", static_cast<double>(ev.value));
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

void
FlightRecorder::clear()
{
    for (auto &n : next_)
        n.store(0, std::memory_order_relaxed);
    for (auto &ev : events_)
        ev = FlightEvent{};
    dropped_.store(0, std::memory_order_relaxed);
    dumpRequested_.store(false, std::memory_order_relaxed);
}

FlightRecorder::Dump
FlightRecorder::Dump::fromJson(const util::JsonValue &value)
{
    if (const auto *schema = value.find("schema");
        schema == nullptr || schema->asString() != kDumpSchema)
        util::fatal("flight dump: missing or unknown schema");
    Dump dump;
    dump.cores = static_cast<int>(value.at("cores").asLong());
    dump.capacity = static_cast<int>(value.at("capacity").asLong());
    dump.totalEvents = static_cast<long>(value.at("total_events").asLong());
    dump.wrappedEvents =
        static_cast<long>(value.at("wrapped_events").asLong());
    dump.droppedEvents =
        static_cast<long>(value.at("dropped_events").asLong());
    for (const auto &coreValue : value.at("cores_events").asArray()) {
        DumpCore core;
        core.core = static_cast<int>(coreValue.at("core").asLong());
        core.recorded =
            static_cast<long>(coreValue.at("recorded").asLong());
        for (const auto &evValue : coreValue.at("events").asArray()) {
            DumpEvent ev;
            const std::string &kind = evValue.at("kind").asString();
            if (!flightEventKindFromName(kind, ev.kind))
                util::fatal("flight dump: unknown event kind '", kind,
                            "'");
            ev.tNs = evValue.at("t_ns").asDouble();
            ev.value = evValue.at("value").asDouble();
            core.events.push_back(ev);
        }
        dump.perCore.push_back(std::move(core));
    }
    return dump;
}

} // namespace atmsim::obs
