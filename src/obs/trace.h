/**
 * @file
 * Phase tracing in Chrome trace-event format.
 *
 * A TraceCollector buffers complete ("X") and instant ("i") events
 * and serializes them as a `{"traceEvents": [...]}` JSON document
 * that chrome://tracing and Perfetto load directly. Event timestamps
 * are wall-clock microseconds since the collector was created;
 * every event also carries the simulation time (`t_ns`) in its args,
 * so a run can be read either as a profile (where did the wall time
 * go) or as a timeline (what happened when in simulated time). The
 * event *sequence* -- names, tracks, simulation times -- is a pure
 * function of the run and is what the determinism tests compare;
 * only the wall-clock fields vary between runs.
 *
 * Tracks: callers register named tracks (rendered by Perfetto as
 * threads of one process) and tag events with the returned id, so
 * the engine's phases, the characterizer, and the safety monitor
 * each get their own swimlane.
 *
 * Cost model: when no collector is attached, instrumented code holds
 * a null pointer and every helper (ScopedSpan included) collapses to
 * a pointer test -- no clock reads, no allocation. When attached,
 * recording is an O(1) append into a preallocated vector with a hard
 * event cap; overflow is counted, never reallocated unbounded.
 */

#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace atmsim::obs {

/** Monotonic wall-clock nanoseconds (steady_clock). */
[[nodiscard]] double monotonicWallNs();

/** One buffered trace event. */
struct TraceEvent
{
    const char *name = "";  ///< Static-storage event name.
    char phase = 'X';       ///< 'X' complete, 'i' instant.
    int track = 0;          ///< Registered track id.
    double tsUs = 0.0;      ///< Wall microseconds since collector start.
    double durUs = 0.0;     ///< Wall duration ('X' only).
    double simNs = -1.0;    ///< Simulation time arg (< 0: omitted).
    long arg = -1;          ///< Generic integer arg (< 0: omitted).
};

/**
 * One span received from another process (a fleet worker). Unlike
 * TraceEvent, the name is owned: it crossed a pipe, so there is no
 * static storage to point at. Timestamps are *absolute* monotonic
 * wall microseconds (monotonicWallNs() * 1e-3 in the recording
 * process); the collector aligns them to its own epoch at write
 * time, which is valid because steady_clock is machine-wide and
 * forked workers share it with the supervisor.
 */
struct RemoteSpan
{
    std::string name;
    double tsUs = 0.0;   ///< Absolute monotonic wall microseconds.
    double durUs = 0.0;
    double simNs = -1.0; ///< Simulation time arg (< 0: omitted).
    long arg = -1;       ///< Generic integer arg (< 0: omitted).
};

/** The spans of one worker process, rendered as their own pid lane. */
struct ProcessSpans
{
    long pid = 0;  ///< Real worker pid (the trace pid lane).
    int shard = 0; ///< Shard index (the tid lane within the pid).
    long dropped = 0; ///< Spans the worker dropped at its cap.
    std::vector<RemoteSpan> spans;
};

/**
 * Buffers trace events and writes chrome://tracing JSON.
 *
 * Thread safety: every member that mutates or reads the buffer is
 * serialized on an internal mutex, so spans recorded from worker
 * threads interleave safely; the inspection accessors return copies
 * taken under the lock. nowUs() touches only immutable state.
 */
class TraceCollector
{
  public:
    /** @param max_events Hard cap on buffered events. */
    explicit TraceCollector(std::size_t max_events = 1u << 20);

    /**
     * Find-or-create a named track (a Perfetto swimlane). Track 0 is
     * the default "main" track.
     */
    int track(const std::string &name);

    /** Wall microseconds since the collector was constructed. */
    [[nodiscard]] double nowUs() const;

    /** Append a complete event (begin wall time + duration). */
    void complete(const char *name, int track, double ts_us,
                  double dur_us, double sim_ns = -1.0, long arg = -1);

    /** Append an instant event at the current wall time. */
    void instant(const char *name, int track, double sim_ns = -1.0,
                 long arg = -1);

    // --- Inspection ----------------------------------------------------

    /** Copy of the buffered events (taken under the lock). */
    [[nodiscard]] std::vector<TraceEvent> events() const;

    /** Events rejected because the buffer was full. */
    [[nodiscard]] std::size_t droppedEvents() const;

    /** Serialize as a chrome://tracing / Perfetto JSON document. */
    void writeChromeTrace(std::ostream &os) const;

    /**
     * Same, merged with per-process worker spans: each ProcessSpans
     * becomes a real pid lane (tid = shard index), timestamps
     * aligned to this collector's epoch. Workers must be ordered by
     * the caller (the supervisor sorts by shard), which keeps the
     * merged document's event sequence deterministic.
     */
    void writeChromeTrace(std::ostream &os,
                          const std::vector<ProcessSpans> &workers) const;

    /**
     * Non-blocking serialization for signal/crash paths: try the
     * lock once, write on success. Returns false without touching
     * `os` when the collector is locked by the interrupted thread --
     * blocking there would deadlock the signal handler.
     */
    [[nodiscard]] bool tryWriteChromeTrace(std::ostream &os) const;

    /** Non-blocking merged serialization (see above). */
    [[nodiscard]] bool
    tryWriteChromeTrace(std::ostream &os,
                        const std::vector<ProcessSpans> &workers) const;

    /** Drop buffered events; track registrations are kept. */
    void clear();

  private:
    void writeChromeTraceLocked(std::ostream &os,
                                const std::vector<ProcessSpans> *workers)
        const ATM_REQUIRES(mu_);

    const double epochNs_;
    const std::size_t maxEvents_;
    mutable util::Mutex mu_;
    std::size_t dropped_ ATM_GUARDED_BY(mu_) = 0;
    std::vector<TraceEvent> events_ ATM_GUARDED_BY(mu_);
    std::vector<std::string> trackNames_ ATM_GUARDED_BY(mu_);
    std::map<std::string, int> trackIndex_ ATM_GUARDED_BY(mu_);
};

/**
 * RAII span: measures the wall time of a scope and appends one
 * complete event on destruction. With a null collector both
 * constructor and destructor reduce to a pointer test.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceCollector *collector, const char *name, int track,
               double sim_ns = -1.0)
        : collector_(collector), name_(name), track_(track),
          simNs_(sim_ns)
    {
        if (collector_)
            startUs_ = collector_->nowUs();
    }

    ~ScopedSpan()
    {
        if (collector_) {
            collector_->complete(name_, track_, startUs_,
                                 collector_->nowUs() - startUs_,
                                 simNs_);
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceCollector *collector_;
    const char *name_;
    int track_;
    double simNs_;
    double startUs_ = 0.0;
};

} // namespace atmsim::obs
