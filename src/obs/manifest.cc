#include "obs/manifest.h"

#include "util/json_writer.h"

namespace atmsim::obs {

double
RunManifest::stepsPerSec() const
{
    if (engineSteps <= 0 || engineWallSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(engineSteps) / engineWallSeconds;
}

double
RunManifest::fastForwardSpeedup() const
{
    if (engineFastForwardedSteps <= 0
        || engineFastForwardedSteps >= engineSteps)
        return 1.0;
    return static_cast<double>(engineSteps)
         / static_cast<double>(engineSteps - engineFastForwardedSteps);
}

void
RunManifest::setCounter(const std::string &name, double value)
{
    for (auto &[key, val] : counters) {
        if (key == name) {
            val = value;
            return;
        }
    }
    counters.emplace_back(name, value);
}

void
RunManifest::writeJson(std::ostream &os) const
{
    util::JsonWriter json(os);
    json.beginObject();
    json.field("schema", kManifestSchema);
    json.field("tool", tool);
    if (chip.empty())
        json.key("chip").nullValue();
    else
        json.field("chip", chip);
    json.field("seed", static_cast<std::uint64_t>(seed));
    json.field("jobs", jobs);

    json.key("args").beginArray();
    for (const std::string &arg : args)
        json.value(arg);
    json.endArray();

    if (faultCampaign.empty())
        json.key("fault_campaign").nullValue();
    else
        json.field("fault_campaign", faultCampaign);

    json.key("config").beginObject();
    for (const auto &[key, val] : config)
        json.field(key, val);
    json.endObject();

    json.key("build").beginObject();
#if defined(__VERSION__)
    json.field("compiler", __VERSION__);
#else
    json.key("compiler").nullValue();
#endif
#if defined(NDEBUG)
    json.field("assertions", false);
#else
    json.field("assertions", true);
#endif
    // Configure-time git stamp (src/obs/CMakeLists.txt); absent in
    // builds without git metadata.
#if defined(ATMSIM_GIT_COMMIT)
    json.field("git_commit", ATMSIM_GIT_COMMIT);
    json.field("git_dirty", ATMSIM_GIT_DIRTY != 0);
#else
    json.key("git_commit").nullValue();
    json.key("git_dirty").nullValue();
#endif
    if (jobsRequested > 0)
        json.field("jobs_requested", jobsRequested);
    else
        json.key("jobs_requested").nullValue();
    json.field("jobs_resolved", jobs);
    json.endObject();

    json.field("wall_seconds", wallSeconds);

    json.key("engine").beginObject();
    json.field("runs", engineRuns);
    json.field("steps", engineSteps);
    json.field("wall_seconds", engineWallSeconds);
    json.field("sim_ns", engineSimNs);
    json.field("steps_per_sec", stepsPerSec());
    json.field("mode", engineMode);
    json.field("fast_forwarded_steps", engineFastForwardedSteps);
    json.field("speedup", fastForwardSpeedup());
    json.key("phases").beginArray();
    for (const PhaseStat &phase : phases) {
        json.beginObject();
        json.field("name", phase.name);
        json.field("wall_ns", phase.wallNs);
        json.field("calls", phase.calls);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    json.key("counters").beginObject();
    for (const auto &[key, val] : counters)
        json.field(key, val);
    json.endObject();

    json.field("interrupted", interrupted);

    if (fleet.present) {
        json.key("fleet").beginObject();
        json.field("shards_total", fleet.shardsTotal);
        json.field("shards_completed", fleet.shardsCompleted);
        json.field("shards_failed", fleet.shardsFailed);
        json.field("chips_total", fleet.chipsTotal);
        json.field("chips_done", fleet.chipsDone);
        json.field("chips_skipped", fleet.chipsSkipped);
        json.field("retries", fleet.retries);
        json.field("checkpoints_written", fleet.checkpointsWritten);
        json.field("resumed", fleet.resumed);
        json.key("shard_retries").beginObject();
        for (const auto &[shard, count] : fleet.shardRetries)
            json.field(std::to_string(shard), count);
        json.endObject();
        json.key("failed_shards").beginArray();
        for (const long shard : fleet.failedShards)
            json.value(shard);
        json.endArray();
        json.field("workers_configured", fleet.workersConfigured);
        json.key("workers").beginArray();
        for (const WorkerManifest &w : fleet.workers) {
            json.beginObject();
            json.field("worker", w.worker);
            json.field("pid", w.pid);
            json.field("shards_completed", w.shardsCompleted);
            json.field("chips_observed", w.chipsObserved);
            json.field("obs_messages", w.obsMessages);
            json.field("span_events", w.spanEvents);
            json.field("spans_dropped", w.spansDropped);
            if (w.partial.present) {
                json.key("partial").beginObject();
                json.key("shards").beginArray();
                for (const long shard : w.partial.shards)
                    json.value(shard);
                json.endArray();
                json.field("chips_observed", w.partial.chipsObserved);
                json.key("metrics");
                w.partial.metrics.writeJson(json);
                json.endObject();
            } else {
                json.key("partial").nullValue();
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    json.key("metrics");
    metrics.writeJson(json);
    json.endObject();
    os << '\n';
}

} // namespace atmsim::obs
