/**
 * @file
 * Per-phase wall-clock accounting and the observability bundle.
 *
 * PhaseProfiler accumulates wall nanoseconds and call counts for a
 * small fixed set of named phases (the engine's PDN advance, thermal
 * cadence, ATM loop, violation check, ...). It is the source of the
 * per-phase breakdown in run manifests and of the chunked phase
 * spans in Chrome traces. All methods are header-inline; when
 * disabled, begin()/end() are a bool test each, so instrumented hot
 * loops compile to their uninstrumented shape.
 *
 * Observability is the non-owning bundle instrumented components
 * accept: a metrics registry, a trace collector, or both. Components
 * treat null members as "off".
 */

#pragma once

#include <cstddef>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atmsim::obs {

/** Aggregate wall-clock cost of one named phase. */
struct PhaseStat
{
    const char *name = "";
    double wallNs = 0.0;
    long calls = 0;
};

/** Fixed-phase wall-clock accumulator. */
class PhaseProfiler
{
  public:
    /**
     * @param names Static-storage phase names; the index into this
     *        vector is the phase id used by begin()/end().
     * @param enabled Disabled profilers never read the clock.
     */
    PhaseProfiler(std::vector<const char *> names, bool enabled)
        : names_(std::move(names)), enabled_(enabled),
          wallNs_(names_.size(), 0.0), calls_(names_.size(), 0)
    {
    }

    [[nodiscard]] bool enabled() const { return enabled_; }

    /** Phase-entry timestamp (0 when disabled). */
    [[nodiscard]]
    double begin() const { return enabled_ ? monotonicWallNs() : 0.0; }

    /** Close a phase opened at begin()'s return value. */
    void
    end(std::size_t phase, double t0)
    {
        if (!enabled_)
            return;
        wallNs_[phase] += monotonicWallNs() - t0;
        ++calls_[phase];
    }

    /** Accumulated wall nanoseconds of one phase. */
    [[nodiscard]]
    double wallNs(std::size_t phase) const { return wallNs_[phase]; }

    /** Invocations of one phase. */
    [[nodiscard]] long calls(std::size_t phase) const { return calls_[phase]; }

    /** Wall nanoseconds accrued since a previous reading. */
    [[nodiscard]] double
    wallNsSince(std::size_t phase, double prev_ns) const
    {
        return wallNs_[phase] - prev_ns;
    }

    /** All phases, in registration order. Teardown-only: runs after
     *  the step loop has finished. */
    // atmlint: contract(cold)
    [[nodiscard]] std::vector<PhaseStat>
    snapshot() const
    {
        std::vector<PhaseStat> out;
        out.reserve(names_.size());
        for (std::size_t i = 0; i < names_.size(); ++i)
            out.push_back({names_[i], wallNs_[i], calls_[i]});
        return out;
    }

  private:
    std::vector<const char *> names_;
    bool enabled_;
    std::vector<double> wallNs_;
    std::vector<long> calls_;
};

/** Non-owning bundle of observability backends. */
struct Observability
{
    MetricsRegistry *metrics = nullptr;
    TraceCollector *trace = nullptr;
    FlightRecorder *flight = nullptr;

    [[nodiscard]] bool
    any() const
    {
        return metrics != nullptr || trace != nullptr || flight != nullptr;
    }

    /**
     * True when a backend that charges wall-clock reads is attached.
     * The flight recorder records sim time only, so attaching it
     * alone must not enable the phase profiler's clock reads (that
     * is what keeps the recorder-on engine step inside its overhead
     * budget).
     */
    [[nodiscard]] bool
    wantsWallClock() const
    {
        return metrics != nullptr || trace != nullptr;
    }
};

} // namespace atmsim::obs
