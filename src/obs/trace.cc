#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "util/json_writer.h"
#include "util/logging.h"

namespace atmsim::obs {

double
monotonicWallNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

TraceCollector::TraceCollector(std::size_t max_events)
    : epochNs_(monotonicWallNs()), maxEvents_(max_events)
{
    if (max_events == 0)
        util::fatal("trace collector needs a nonzero event cap");
    events_.reserve(std::min<std::size_t>(max_events, 4096));
    trackNames_.push_back("main");
    trackIndex_.emplace("main", 0);
}

// Track registration happens at attach/setup time; steady-state
// emitters cache the returned id.
// atmlint: contract(cold)
int
TraceCollector::track(const std::string &name)
{
    util::MutexLock lock(mu_);
    const auto it = trackIndex_.find(name);
    if (it != trackIndex_.end())
        return it->second;
    const int id = static_cast<int>(trackNames_.size());
    trackNames_.push_back(name);
    trackIndex_.emplace(name, id);
    return id;
}

double
TraceCollector::nowUs() const
{
    return (monotonicWallNs() - epochNs_) * 1e-3;
}

void
TraceCollector::complete(const char *name, int track, double ts_us,
                         double dur_us, double sim_ns, long arg)
{
    util::MutexLock lock(mu_);
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    TraceEvent ev;
    ev.name = name;
    ev.phase = 'X';
    ev.track = track;
    ev.tsUs = ts_us;
    ev.durUs = dur_us;
    ev.simNs = sim_ns;
    ev.arg = arg;
    events_.push_back(ev);
}

void
TraceCollector::instant(const char *name, int track, double sim_ns,
                        long arg)
{
    util::MutexLock lock(mu_);
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    TraceEvent ev;
    ev.name = name;
    ev.phase = 'i';
    ev.track = track;
    ev.tsUs = nowUs();
    ev.simNs = sim_ns;
    ev.arg = arg;
    events_.push_back(ev);
}

std::vector<TraceEvent>
TraceCollector::events() const
{
    util::MutexLock lock(mu_);
    return events_;
}

std::size_t
TraceCollector::droppedEvents() const
{
    util::MutexLock lock(mu_);
    return dropped_;
}

void
TraceCollector::writeChromeTrace(std::ostream &os) const
{
    util::MutexLock lock(mu_);
    writeChromeTraceLocked(os, nullptr);
}

void
TraceCollector::writeChromeTrace(
    std::ostream &os, const std::vector<ProcessSpans> &workers) const
{
    util::MutexLock lock(mu_);
    writeChromeTraceLocked(os, &workers);
}

bool
TraceCollector::tryWriteChromeTrace(std::ostream &os) const
{
    if (!mu_.tryLock())
        return false;
    util::MutexLock lock(mu_, util::AdoptLock{});
    writeChromeTraceLocked(os, nullptr);
    return true;
}

bool
TraceCollector::tryWriteChromeTrace(
    std::ostream &os, const std::vector<ProcessSpans> &workers) const
{
    if (!mu_.tryLock())
        return false;
    util::MutexLock lock(mu_, util::AdoptLock{});
    writeChromeTraceLocked(os, &workers);
    return true;
}

void
TraceCollector::writeChromeTraceLocked(
    std::ostream &os, const std::vector<ProcessSpans> *workers) const
{
    util::JsonWriter json(os);
    json.beginObject();
    json.key("traceEvents").beginArray();

    // Process/track naming metadata so Perfetto labels the swimlanes.
    json.beginObject();
    json.field("ph", "M");
    json.field("pid", 0);
    json.field("tid", 0);
    json.field("name", "process_name");
    json.key("args").beginObject();
    json.field("name", "atmsim");
    json.endObject();
    json.endObject();
    for (std::size_t t = 0; t < trackNames_.size(); ++t) {
        json.beginObject();
        json.field("ph", "M");
        json.field("pid", 0);
        json.field("tid", static_cast<long>(t));
        json.field("name", "thread_name");
        json.key("args").beginObject();
        json.field("name", trackNames_[t]);
        json.endObject();
        json.endObject();
    }

    for (const TraceEvent &ev : events_) {
        json.beginObject();
        json.field("name", ev.name);
        json.field("ph", std::string_view(&ev.phase, 1));
        json.field("pid", 0);
        json.field("tid", ev.track);
        json.field("ts", ev.tsUs);
        if (ev.phase == 'X')
            json.field("dur", ev.durUs);
        if (ev.phase == 'i')
            json.field("s", "t");
        if (ev.simNs >= 0.0 || ev.arg >= 0) {
            json.key("args").beginObject();
            if (ev.simNs >= 0.0)
                json.field("t_ns", ev.simNs);
            if (ev.arg >= 0)
                json.field("value", ev.arg);
            json.endObject();
        }
        json.endObject();
    }

    // Worker pid lanes of a merged fleet trace. Timestamps arrive as
    // absolute monotonic microseconds and are re-based onto this
    // collector's epoch; names stay static / preallocated so this
    // remains usable from the try-lock signal path.
    long workerDropped = 0;
    if (workers != nullptr) {
        for (const ProcessSpans &w : *workers) {
            workerDropped += w.dropped;
            json.beginObject();
            json.field("ph", "M");
            json.field("pid", w.pid);
            json.field("tid", w.shard);
            json.field("name", "process_name");
            json.key("args").beginObject();
            json.field("name", "atmsim worker");
            json.endObject();
            json.endObject();
            for (const RemoteSpan &span : w.spans) {
                json.beginObject();
                json.field("name", span.name);
                json.field("ph", "X");
                json.field("pid", w.pid);
                json.field("tid", w.shard);
                json.field("ts", span.tsUs - epochNs_ * 1e-3);
                json.field("dur", span.durUs);
                if (span.simNs >= 0.0 || span.arg >= 0) {
                    json.key("args").beginObject();
                    if (span.simNs >= 0.0)
                        json.field("t_ns", span.simNs);
                    if (span.arg >= 0)
                        json.field("value", span.arg);
                    json.endObject();
                }
                json.endObject();
            }
        }
    }
    json.endArray();
    json.field("displayTimeUnit", "ms");
    if (dropped_ > 0)
        json.field("droppedEvents",
                   static_cast<long>(dropped_));
    if (workerDropped > 0)
        json.field("workerDroppedSpans", workerDropped);
    json.endObject();
}

void
TraceCollector::clear()
{
    util::MutexLock lock(mu_);
    events_.clear();
    dropped_ = 0;
}

} // namespace atmsim::obs
