/**
 * @file
 * Run-provenance manifests.
 *
 * A manifest is the machine-readable record of one harness run: what
 * binary ran, with which seed, chip, configuration and fault
 * campaign, how much wall time it took, how many engine steps it
 * advanced (and therefore the steps/sec throughput), the wall-clock
 * breakdown per engine phase, the end-of-run safety counters, and a
 * full metrics snapshot. Checked-in manifests are the repo's perf
 * baseline: CI regenerates one and rejects a >30% steps/sec
 * regression (tools/bench/check_regression.py), and any two
 * manifests are directly diffable because every field is named and
 * the metrics snapshot is sorted.
 *
 * The schema is documented in docs/OBSERVABILITY.md and validated by
 * tools/bench/validate_manifest.py.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/phase.h"

namespace atmsim::obs {

/** Manifest schema identifier (bump on breaking changes). */
inline constexpr const char *kManifestSchema = "atmsim-run-manifest-v2";

/**
 * Last-streamed observations of shards a worker slot abandoned. When
 * retries are exhausted (or a worker is SIGKILLed and never retried)
 * the shard's results are lost to the campaign fold -- but the
 * worker streamed periodic partial snapshots while it ran, and this
 * block preserves the last one per shard so degraded campaigns
 * report what was actually observed instead of silently dropping it.
 * Kept separate from the campaign metrics: folding partials into the
 * main registry would break the bitwise serial-equivalence contract.
 */
struct WorkerPartialManifest
{
    bool present = false;
    std::vector<long> shards; ///< Abandoned shards, ascending.
    long chipsObserved = 0;   ///< Chips observed before abandonment.
    MetricsSnapshot metrics;  ///< Folded last partial snapshots.
};

/** Observability record of one fleet worker slot. */
struct WorkerManifest
{
    long worker = 0;          ///< Worker slot index.
    long pid = 0;             ///< Last pid in the slot (0 = unknown).
    long shardsCompleted = 0; ///< Shards this slot folded.
    long chipsObserved = 0;   ///< Chips streamed via obs messages.
    long obsMessages = 0;     ///< Obs messages received.
    long spanEvents = 0;      ///< Spans merged into the fleet trace.
    long spansDropped = 0;    ///< Spans dropped at the worker's cap.
    WorkerPartialManifest partial;
};

/**
 * Coverage record of a fleet campaign (bench/fleet_study). The
 * robustness contract requires the manifest to be *truthful* under
 * degradation: when retries are exhausted the campaign still
 * completes, and these fields record exactly which coverage was lost
 * instead of pretending the run was whole.
 */
struct FleetManifest
{
    bool present = false;     ///< Emitted only when a campaign ran.

    long shardsTotal = 0;     ///< Shards the population partitioned into.
    long shardsCompleted = 0; ///< Shards folded into the results.
    long shardsFailed = 0;    ///< Shards abandoned after max retries.
    long chipsTotal = 0;      ///< Chips in the configured population.
    long chipsDone = 0;       ///< Chips covered by completed shards.
    long chipsSkipped = 0;    ///< Chips lost with failed shards.
    long retries = 0;         ///< Worker re-spawns across all shards.
    long checkpointsWritten = 0; ///< Checkpoints persisted this run.
    bool resumed = false;     ///< Continued from a checkpoint.

    /** (shard index, retry count) for every shard that retried. */
    std::vector<std::pair<long, long>> shardRetries;

    /** Indices of shards abandoned after exhausted retries. */
    std::vector<long> failedShards;

    /** Worker processes requested (--workers; 0 = in-process). */
    long workersConfigured = 0;

    /** Per-worker-slot observability, ordered by slot index. */
    std::vector<WorkerManifest> workers;
};

/** Provenance + performance record of one run. */
struct RunManifest
{
    /** Harness/binary name, e.g. "fig11_stress_test". */
    std::string tool;

    /** Chip under test (reference-chip name), empty when n/a. */
    std::string chip;

    /** Primary random seed of the run. */
    std::uint64_t seed = 0;

    /**
     * Worker threads the harness ran with (--jobs). Provenance only:
     * outputs are jobs-invariant, wall-clock fields are not.
     */
    int jobs = 1;

    /**
     * The --jobs value as given on the command line, before the
     * harness resolved a default; 0 when the flag was absent (the
     * manifest then reports null) so a reader can tell "asked for 2"
     * from "defaulted to 2 on a 2-way machine".
     */
    int jobsRequested = 0;

    /** Command-line arguments (without argv[0]). */
    std::vector<std::string> args;

    /** Fault campaign text, empty when none was attached. */
    std::string faultCampaign;

    /** Free-form configuration key/value pairs (SimConfig, ...). */
    std::vector<std::pair<std::string, std::string>> config;

    /** End-to-end wall time of the harness (seconds). */
    double wallSeconds = 0.0;

    // --- Engine totals (zero when no engine ran) -----------------------

    long engineRuns = 0;      ///< SimEngine::run invocations.
    long engineSteps = 0;     ///< Total engine steps advanced.
    double engineWallSeconds = 0.0; ///< Wall time inside run().
    double engineSimNs = 0.0; ///< Total simulated time (ns).

    /** Engine execution mode ("legacy", "soa", "sampled"). */
    std::string engineMode = "soa";

    /** Steps covered by sampled-mode fast-forward (subset of
     *  engineSteps; 0 outside sampled mode). */
    long engineFastForwardedSteps = 0;

    /** Engine throughput; the CI regression gate reads this. */
    [[nodiscard]] double stepsPerSec() const;

    /**
     * Cycle-stepping work avoided by fast-forward:
     * steps / (steps - fast_forwarded_steps). 1.0 outside sampled
     * mode (or when the detector never armed).
     */
    [[nodiscard]] double fastForwardSpeedup() const;

    /** Per-phase wall-clock breakdown (engine phases). */
    std::vector<PhaseStat> phases;

    /** Named scalar counters (safety counters, harness totals). */
    std::vector<std::pair<std::string, double>> counters;

    /**
     * True when the run was cut short by SIGINT/SIGTERM and the
     * manifest was flushed from the signal path -- partial totals,
     * honestly labelled.
     */
    bool interrupted = false;

    /** Fleet campaign coverage (present only for fleet harnesses). */
    FleetManifest fleet;

    /** Metrics snapshot taken at the end of the run. */
    MetricsSnapshot metrics;

    /** Append/overwrite one named counter. */
    void setCounter(const std::string &name, double value);

    /** Serialize the manifest as a JSON document. */
    void writeJson(std::ostream &os) const;
};

} // namespace atmsim::obs
