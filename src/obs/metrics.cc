#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace atmsim::obs {

Histogram
Histogram::linear(double lo, double hi, int buckets)
{
    if (buckets < 1)
        util::fatal("histogram needs at least one bucket, got ",
                    buckets);
    if (!(hi > lo))
        util::fatal("histogram range [", lo, ", ", hi,
                    ") is not ascending");
    Histogram h;
    h.linear_ = true;
    h.lo_ = lo;
    h.width_ = (hi - lo) / static_cast<double>(buckets);
    h.counts_.assign(static_cast<std::size_t>(buckets), 0);
    return h;
}

Histogram
Histogram::explicitEdges(std::vector<double> edges)
{
    if (edges.size() < 2)
        util::fatal("explicit histogram needs >= 2 edges, got ",
                    edges.size());
    for (std::size_t i = 1; i < edges.size(); ++i) {
        if (!(edges[i] > edges[i - 1]))
            util::fatal("histogram edges must ascend strictly; edge ",
                        i, " (", edges[i], ") <= edge ", i - 1, " (",
                        edges[i - 1], ")");
    }
    Histogram h;
    h.linear_ = false;
    h.edges_ = std::move(edges);
    h.counts_.assign(h.edges_.size() - 1, 0);
    return h;
}

void
Histogram::record(double value)
{
    if (count_ == 0) {
        minSeen_ = value;
        maxSeen_ = value;
    } else {
        minSeen_ = std::min(minSeen_, value);
        maxSeen_ = std::max(maxSeen_, value);
    }
    ++count_;
    sum_ += value;

    if (linear_) {
        const double offset = (value - lo_) / width_;
        if (offset < 0.0) {
            ++underflow_;
        } else if (offset >= static_cast<double>(counts_.size())) {
            ++overflow_;
        } else {
            ++counts_[static_cast<std::size_t>(offset)];
        }
        return;
    }
    if (value < edges_.front()) {
        ++underflow_;
        return;
    }
    if (value >= edges_.back()) {
        ++overflow_;
        return;
    }
    // First edge strictly above the value; the bucket before it.
    const auto it =
        std::upper_bound(edges_.begin(), edges_.end(), value);
    ++counts_[static_cast<std::size_t>(it - edges_.begin()) - 1];
}

void
Histogram::merge(const Histogram &other)
{
    const bool same_layout =
        linear_ == other.linear_
        && counts_.size() == other.counts_.size()
        && (linear_ ? (lo_ == other.lo_ && width_ == other.width_)
                    : edges_ == other.edges_);
    if (!same_layout)
        util::fatal("histogram merge with mismatched bucket layout (",
                    counts_.size(), " vs ", other.counts_.size(),
                    " buckets)");
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        minSeen_ = other.minSeen_;
        maxSeen_ = other.maxSeen_;
    } else {
        minSeen_ = std::min(minSeen_, other.minSeen_);
        maxSeen_ = std::max(maxSeen_, other.maxSeen_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
}

double
Histogram::bucketLo(std::size_t i) const
{
    if (i >= counts_.size())
        util::fatal("histogram bucket ", i, " out of range");
    return linear_ ? lo_ + width_ * static_cast<double>(i) : edges_[i];
}

double
Histogram::bucketHi(std::size_t i) const
{
    if (i >= counts_.size())
        util::fatal("histogram bucket ", i, " out of range");
    return linear_ ? lo_ + width_ * static_cast<double>(i + 1)
                   : edges_[i + 1];
}

double
Histogram::mean() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::minSeen() const
{
    return count_ > 0 ? minSeen_ : 0.0;
}

double
Histogram::maxSeen() const
{
    return count_ > 0 ? maxSeen_ : 0.0;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
    minSeen_ = 0.0;
    maxSeen_ = 0.0;
}

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

bool
MetricSnapshotEntry::operator==(const MetricSnapshotEntry &o) const
{
    if (name != o.name || kind != o.kind)
        return false;
    switch (kind) {
      case MetricKind::Counter:
        return counter == o.counter;
      case MetricKind::Gauge:
        return gauge == o.gauge;
      case MetricKind::Histogram:
        if (histogram.count() != o.histogram.count()
            || histogram.sum() != o.histogram.sum()
            || histogram.underflow() != o.histogram.underflow()
            || histogram.overflow() != o.histogram.overflow()
            || histogram.bucketCount() != o.histogram.bucketCount())
            return false;
        for (std::size_t i = 0; i < histogram.bucketCount(); ++i) {
            if (histogram.bucketHits(i) != o.histogram.bucketHits(i))
                return false;
        }
        return true;
    }
    return false;
}

const MetricSnapshotEntry *
MetricsSnapshot::find(std::string_view name) const
{
    for (const MetricSnapshotEntry &entry : entries) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

bool
MetricsSnapshot::operator==(const MetricsSnapshot &o) const
{
    return entries == o.entries;
}

void
MetricsSnapshot::writeText(std::ostream &os) const
{
    for (const MetricSnapshotEntry &entry : entries) {
        switch (entry.kind) {
          case MetricKind::Counter:
            os << entry.name << " counter " << entry.counter << '\n';
            break;
          case MetricKind::Gauge:
            os << entry.name << " gauge " << entry.gauge << '\n';
            break;
          case MetricKind::Histogram: {
            const Histogram &h = entry.histogram;
            os << entry.name << " histogram count=" << h.count()
               << " mean=" << h.mean() << " min=" << h.minSeen()
               << " max=" << h.maxSeen()
               << " underflow=" << h.underflow()
               << " overflow=" << h.overflow() << '\n';
            for (std::size_t i = 0; i < h.bucketCount(); ++i) {
                if (h.bucketHits(i) == 0)
                    continue;
                os << "  [" << h.bucketLo(i) << ", " << h.bucketHi(i)
                   << ") " << h.bucketHits(i) << '\n';
            }
            break;
          }
        }
    }
}

void
Histogram::writeJson(util::JsonWriter &json) const
{
    json.beginObject();
    json.field("count", count());
    json.field("sum", sum());
    json.field("mean", mean());
    json.field("min", minSeen());
    json.field("max", maxSeen());
    json.field("underflow", underflow());
    json.field("overflow", overflow());
    // The layout block is what makes the document a *checkpoint*
    // rather than a report: fromJson() needs it to rebuild a
    // histogram whose merge() layout check passes against the live
    // registry's instrument.
    json.field("layout", linear_ ? "linear" : "edges");
    if (linear_) {
        json.field("lo", lo_);
        json.field("width", width_);
    }
    json.key("buckets").beginArray();
    for (std::size_t i = 0; i < bucketCount(); ++i) {
        json.beginObject();
        json.field("lo", bucketLo(i));
        json.field("hi", bucketHi(i));
        json.field("hits", bucketHits(i));
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

Histogram
Histogram::fromJson(const util::JsonValue &value)
{
    const util::JsonValue::Array &buckets =
        value.at("buckets").asArray();
    const std::string &layout = value.at("layout").asString();

    Histogram h;
    if (layout == "linear") {
        h.linear_ = true;
        h.lo_ = value.at("lo").asDouble();
        h.width_ = value.at("width").asDouble();
        if (!(h.width_ > 0.0) || buckets.empty())
            util::fatal("histogram JSON: bad linear layout");
    } else if (layout == "edges") {
        h.linear_ = false;
        if (buckets.empty())
            util::fatal("histogram JSON: explicit layout without "
                        "buckets");
        for (const util::JsonValue &bucket : buckets)
            h.edges_.push_back(bucket.at("lo").asDouble());
        h.edges_.push_back(buckets.back().at("hi").asDouble());
        for (std::size_t i = 1; i < h.edges_.size(); ++i) {
            if (!(h.edges_[i] > h.edges_[i - 1]))
                util::fatal("histogram JSON: edges not ascending");
        }
    } else {
        util::fatal("histogram JSON: unknown layout '", layout, "'");
    }

    h.counts_.reserve(buckets.size());
    long binned = 0;
    for (const util::JsonValue &bucket : buckets) {
        const auto hits =
            static_cast<long>(bucket.at("hits").asLong());
        if (hits < 0)
            util::fatal("histogram JSON: negative bucket hits");
        h.counts_.push_back(hits);
        binned += hits;
    }
    h.underflow_ = static_cast<long>(value.at("underflow").asLong());
    h.overflow_ = static_cast<long>(value.at("overflow").asLong());
    h.count_ = static_cast<long>(value.at("count").asLong());
    h.sum_ = value.at("sum").asDouble();
    if (h.underflow_ < 0 || h.overflow_ < 0
        || binned + h.underflow_ + h.overflow_ != h.count_)
        util::fatal("histogram JSON: bin totals disagree with count");
    if (h.count_ > 0) {
        h.minSeen_ = value.at("min").asDouble();
        h.maxSeen_ = value.at("max").asDouble();
    }
    return h;
}

namespace {

void
writeSnapshotJson(util::JsonWriter &json, const MetricsSnapshot &snap)
{
    json.beginObject();
    for (const MetricSnapshotEntry &entry : snap.entries) {
        json.key(entry.name).beginObject();
        json.field("kind", metricKindName(entry.kind));
        switch (entry.kind) {
          case MetricKind::Counter:
            json.field("value", entry.counter);
            break;
          case MetricKind::Gauge:
            json.field("value", entry.gauge);
            break;
          case MetricKind::Histogram:
            json.key("value");
            entry.histogram.writeJson(json);
            break;
        }
        json.endObject();
    }
    json.endObject();
}

} // namespace

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    util::JsonWriter json(os);
    writeSnapshotJson(json, *this);
}

void
MetricsSnapshot::writeJson(util::JsonWriter &json) const
{
    writeSnapshotJson(json, *this);
}

MetricsSnapshot
MetricsSnapshot::fromJson(const util::JsonValue &value)
{
    MetricsSnapshot snap;
    // JsonValue objects iterate key-sorted, which is exactly the
    // canonical snapshot order snapshot() produces.
    for (const auto &[name, entry] : value.asObject()) {
        if (name.empty())
            util::fatal("metrics JSON: empty metric name");
        MetricSnapshotEntry out;
        out.name = name;
        const std::string &kind = entry.at("kind").asString();
        if (kind == "counter") {
            out.kind = MetricKind::Counter;
            out.counter =
                static_cast<long>(entry.at("value").asLong());
        } else if (kind == "gauge") {
            out.kind = MetricKind::Gauge;
            out.gauge = entry.at("value").asDouble();
        } else if (kind == "histogram") {
            out.kind = MetricKind::Histogram;
            out.histogram = Histogram::fromJson(entry.at("value"));
        } else {
            util::fatal("metrics JSON: metric '", name,
                        "' has unknown kind '", kind, "'");
        }
        snap.entries.push_back(std::move(out));
    }
    return snap;
}

MetricsRegistry::Slot &
MetricsRegistry::slot(std::string_view name, MetricKind kind)
{
    if (name.empty())
        util::fatal("metric registered with an empty name");
    const auto it = index_.find(name);
    if (it != index_.end()) {
        if (it->second.kind != kind)
            util::fatal("metric '", std::string(name),
                        "' already registered as ",
                        metricKindName(it->second.kind),
                        ", requested as ", metricKindName(kind));
        return it->second;
    }
    Slot fresh;
    fresh.kind = kind;
    return index_.emplace(std::string(name), fresh).first->second;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    util::MutexLock lock(mu_);
    Slot &s = slot(name, MetricKind::Counter);
    if (!s.counter) {
        counters_.emplace_back();
        s.counter = &counters_.back();
    }
    return *s.counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    util::MutexLock lock(mu_);
    Slot &s = slot(name, MetricKind::Gauge);
    if (!s.gauge) {
        gauges_.emplace_back();
        s.gauge = &gauges_.back();
    }
    return *s.gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name, Histogram prototype)
{
    util::MutexLock lock(mu_);
    Slot &s = slot(name, MetricKind::Histogram);
    if (!s.histogram) {
        histograms_.push_back(std::move(prototype));
        s.histogram = &histograms_.back();
    }
    return *s.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    util::MutexLock lock(mu_);
    return snapshotLocked();
}

bool
MetricsRegistry::trySnapshot(MetricsSnapshot &out) const
{
    if (!mu_.tryLock())
        return false;
    util::MutexLock lock(mu_, util::AdoptLock{});
    out = snapshotLocked();
    return true;
}

MetricsSnapshot
MetricsRegistry::snapshotLocked() const
{
    MetricsSnapshot snap;
    snap.entries.reserve(index_.size());
    // std::map iterates in name order, so the snapshot is sorted.
    for (const auto &[name, s] : index_) {
        MetricSnapshotEntry entry;
        entry.name = name;
        entry.kind = s.kind;
        switch (s.kind) {
          case MetricKind::Counter:
            entry.counter = s.counter->value();
            break;
          case MetricKind::Gauge:
            entry.gauge = s.gauge->value();
            break;
          case MetricKind::Histogram:
            entry.histogram = *s.histogram;
            break;
        }
        snap.entries.push_back(std::move(entry));
    }
    return snap;
}

void
MetricsRegistry::mergeFrom(const MetricsRegistry &other)
{
    // Snapshot first so the two registry locks are never held
    // together (no ordering to get wrong, self-merge stays safe).
    mergeFrom(other.snapshot());
}

void
MetricsRegistry::mergeFrom(const MetricsSnapshot &snap)
{
    util::MutexLock lock(mu_);
    for (const MetricSnapshotEntry &entry : snap.entries) {
        Slot &s = slot(entry.name, entry.kind);
        switch (entry.kind) {
          case MetricKind::Counter:
            if (!s.counter) {
                counters_.emplace_back();
                s.counter = &counters_.back();
            }
            s.counter->inc(entry.counter);
            break;
          case MetricKind::Gauge:
            if (!s.gauge) {
                gauges_.emplace_back();
                s.gauge = &gauges_.back();
            }
            s.gauge->set(entry.gauge);
            break;
          case MetricKind::Histogram:
            if (!s.histogram) {
                Histogram layout = entry.histogram;
                layout.reset();
                histograms_.push_back(std::move(layout));
                s.histogram = &histograms_.back();
            }
            s.histogram->merge(entry.histogram);
            break;
        }
    }
}

void
MetricsRegistry::reset()
{
    util::MutexLock lock(mu_);
    for (Counter &c : counters_)
        c.reset();
    for (Gauge &g : gauges_)
        g.reset();
    for (Histogram &h : histograms_)
        h.reset();
}

void
MetricsRegistry::writeText(std::ostream &os) const
{
    snapshot().writeText(os);
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    snapshot().writeJson(os);
}

} // namespace atmsim::obs
