/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket
 * histograms with O(1) hot-path recording.
 *
 * The registry is the in-process counterpart of the POWER server's
 * sensor fabric the paper reads through the service processor:
 * everything the engine, control loops, and supervisors want to
 * report -- violation episodes, DPLL slews, CPM occupancy, sampled
 * voltages -- is registered once by name and then updated through a
 * stable pointer, so the per-step cost is an increment, never a map
 * lookup. Snapshots are sorted by name, which makes two snapshots of
 * deterministic runs byte-comparable; export is either a human
 * `name value` text dump or JSON for the run manifests.
 *
 * Naming convention (docs/OBSERVABILITY.md): dot-separated lowercase
 * path, subsystem first, with the unit as the last path segment when
 * the value carries one, e.g. `engine.core.voltage_v`,
 * `dpll.slew.down`, `characterizer.trials`.
 */

#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace atmsim::util {
class JsonWriter;
class JsonValue;
}

namespace atmsim::obs {

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    void inc(long delta = 1) { value_ += delta; }
    [[nodiscard]] long value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    long value_ = 0;
};

/** Last-value metric. */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    void add(double delta) { value_ += delta; }
    [[nodiscard]] double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram. Buckets are laid out at construction --
 * uniform (`linear`) or explicit ascending edges -- and never change,
 * so recording is O(1) for linear layouts (one subtraction, one
 * multiply, one clamp) and O(log n_buckets) for explicit edges.
 * Values below the first edge land in the underflow bin, values at or
 * above the last edge in the overflow bin; count/sum/min/max are
 * tracked exactly regardless of binning.
 */
class Histogram
{
  public:
    /** Uniform buckets covering [lo, hi). */
    [[nodiscard]] static Histogram linear(double lo, double hi, int buckets);

    /**
     * Explicit ascending edges; bucket i covers [edges[i],
     * edges[i+1]). Needs at least two edges.
     */
    [[nodiscard]] static Histogram explicitEdges(std::vector<double> edges);

    /** Record one value. */
    void record(double value);

    /**
     * Fold another histogram into this one. Both must share the
     * exact bucket layout (fatal otherwise); bins and moments add,
     * min/max combine. Merging shards in a fixed order reproduces
     * the single-histogram result bin-for-bin, which is what keeps
     * parallel sweeps snapshot-identical to serial ones.
     */
    void merge(const Histogram &other);

    // --- Inspection ----------------------------------------------------

    [[nodiscard]] std::size_t bucketCount() const { return counts_.size(); }

    /** Samples in bucket i. */
    [[nodiscard]] long bucketHits(std::size_t i) const { return counts_[i]; }

    /** Inclusive lower edge of bucket i. */
    [[nodiscard]] double bucketLo(std::size_t i) const;

    /** Exclusive upper edge of bucket i. */
    [[nodiscard]] double bucketHi(std::size_t i) const;

    [[nodiscard]] long underflow() const { return underflow_; }
    [[nodiscard]] long overflow() const { return overflow_; }
    [[nodiscard]] long count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double mean() const;

    /** Smallest / largest recorded value (0 when empty). */
    [[nodiscard]] double minSeen() const;
    [[nodiscard]] double maxSeen() const;

    /** Zero all bins and moments; the bucket layout is kept. */
    void reset();

    // --- Serialization -------------------------------------------------

    /**
     * Emit the histogram as a JSON object: moments, bins, and the
     * bucket *layout* (linear lo/width or explicit edges), so
     * fromJson() reconstructs a histogram that merge() accepts
     * against the live original. This is what lets checkpointed
     * metric shards rejoin a resumed campaign bitwise-identically.
     */
    void writeJson(util::JsonWriter &json) const;

    /**
     * Rebuild a histogram written by writeJson(). Throws
     * (util::FatalError / util::JsonTypeError) on structurally
     * invalid input -- checkpoint loaders catch and degrade.
     */
    [[nodiscard]] static Histogram fromJson(const util::JsonValue &value);

  private:
    Histogram() = default;

    bool linear_ = true;
    double lo_ = 0.0;
    double width_ = 1.0;           ///< Bucket width (linear layout).
    std::vector<double> edges_;    ///< Explicit layout only.
    std::vector<long> counts_;
    long underflow_ = 0;
    long overflow_ = 0;
    long count_ = 0;
    double sum_ = 0.0;
    double minSeen_ = 0.0;
    double maxSeen_ = 0.0;
};

/** Kind discriminator for snapshot entries. */
enum class MetricKind { Counter, Gauge, Histogram };

/** Printable kind name. */
[[nodiscard]] const char *metricKindName(MetricKind kind);

/** Point-in-time copy of one metric. */
struct MetricSnapshotEntry
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    long counter = 0;
    double gauge = 0.0;
    Histogram histogram = Histogram::linear(0.0, 1.0, 1);

    bool operator==(const MetricSnapshotEntry &o) const;
};

/** Point-in-time copy of a whole registry, sorted by name. */
struct MetricsSnapshot
{
    std::vector<MetricSnapshotEntry> entries;

    /** Entry by name, or nullptr. */
    [[nodiscard]] const MetricSnapshotEntry *find(std::string_view name) const;

    /** `name kind value` lines, histograms with their bins. */
    void writeText(std::ostream &os) const;

    /** JSON object keyed by metric name. */
    void writeJson(std::ostream &os) const;

    /** Same, spliced into an enclosing document. */
    void writeJson(util::JsonWriter &json) const;

    /**
     * Rebuild a snapshot from the JSON object written by
     * writeJson(). The parsed object iterates key-sorted, so the
     * restored entries carry the canonical snapshot order. Throws on
     * structural violations (unknown kind, malformed histogram).
     */
    [[nodiscard]] static MetricsSnapshot
    fromJson(const util::JsonValue &value);

    /** Identical content (used by the determinism tests). */
    bool operator==(const MetricsSnapshot &o) const;
};

/**
 * Name -> metric store. Metric objects have stable addresses for the
 * registry's lifetime (deque storage), so hot paths resolve a metric
 * once and then update it pointer-directly. Re-registering a name
 * returns the existing instrument; registering it as a different kind
 * is a fatal error.
 *
 * Thread safety: registration, snapshot, reset, and the writers are
 * serialized on an internal mutex (clang -Wthread-safety proves the
 * guard). The *instruments* themselves are not synchronized -- the
 * single-writer hot-path contract (one thread increments a given
 * Counter) is the price of keeping record() at one add.
 */
class MetricsRegistry
{
  public:
    /** Find-or-create a counter. */
    Counter &counter(std::string_view name);

    /** Find-or-create a gauge. */
    Gauge &gauge(std::string_view name);

    /**
     * Find-or-create a histogram. The prototype supplies the bucket
     * layout on first registration and is ignored afterwards.
     */
    Histogram &histogram(std::string_view name, Histogram prototype);

    /** Number of registered metrics. */
    [[nodiscard]] std::size_t
    size() const
    {
        util::MutexLock lock(mu_);
        return index_.size();
    }

    /** Copy every metric, sorted by name. */
    [[nodiscard]] MetricsSnapshot snapshot() const;

    /**
     * Non-blocking snapshot for signal/crash paths: try the lock
     * once and fill `out` on success. Returns false (leaving `out`
     * untouched) when the registry is locked by the interrupted
     * thread -- blocking there would deadlock the signal handler.
     */
    [[nodiscard]] bool trySnapshot(MetricsSnapshot &out) const;

    /**
     * Fold another registry into this one: counters add, gauges take
     * the incoming value (last merge wins), histograms merge
     * bin-wise (layouts must match). Metrics only the source knows
     * are registered here on the fly.
     *
     * This is the join half of the per-task shard pattern
     * (docs/PARALLELISM.md): parallel sweep tasks record into
     * private registries, and the caller merges the shards back in
     * task-index order, so the combined snapshot is identical at any
     * job count -- including the inline jobs=1 path, which uses the
     * same shard-and-merge route.
     */
    void mergeFrom(const MetricsRegistry &other);

    /**
     * Same fold, from a point-in-time snapshot instead of a live
     * registry. This is the path deserialized shards take: a worker
     * process snapshots its registry, the snapshot rides a result
     * message or checkpoint as JSON, and the supervisor folds it back
     * here in shard-index order.
     */
    void mergeFrom(const MetricsSnapshot &snap);

    /** Zero every metric in place (layouts are kept). */
    void reset();

    /** Text dump of a fresh snapshot. */
    void writeText(std::ostream &os) const;

    /** JSON dump of a fresh snapshot. */
    void writeJson(std::ostream &os) const;

  private:
    struct Slot
    {
        MetricKind kind;
        Counter *counter = nullptr;
        Gauge *gauge = nullptr;
        Histogram *histogram = nullptr;
    };

    Slot &slot(std::string_view name, MetricKind kind)
        ATM_REQUIRES(mu_);

    [[nodiscard]] MetricsSnapshot snapshotLocked() const
        ATM_REQUIRES(mu_);

    mutable util::Mutex mu_;
    std::map<std::string, Slot, std::less<>> index_
        ATM_GUARDED_BY(mu_);
    std::deque<Counter> counters_ ATM_GUARDED_BY(mu_);
    std::deque<Gauge> gauges_ ATM_GUARDED_BY(mu_);
    std::deque<Histogram> histograms_ ATM_GUARDED_BY(mu_);
};

} // namespace atmsim::obs
