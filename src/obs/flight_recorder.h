/**
 * @file
 * Per-core flight recorder: a fixed-size ring buffer of engine events
 * (margin samples, fmax updates, droop edges, safety-monitor
 * transitions, fault injections) recorded at O(1) cost and dumped as
 * JSON after the fact.
 *
 * This is the post-mortem half of the observability story. Metrics
 * aggregate, traces sample coarse phases, but when a droop race ends
 * in a timing violation (paper Sec. III-B) the question is always
 * "what were the last few hundred events on that core": the recorder
 * keeps exactly that, per core, in preallocated storage, and writes
 * the dump on violation, on crash (the bench signal path), or on
 * request (`--flight-dump`).
 *
 * Recording is lock-free and allocation-free: each core owns a slice
 * of one flat preallocated array plus an atomic monotonic sequence
 * counter; a record() is one fetch_add and one slot store. Distinct
 * cores may record concurrently; a single core follows the same
 * single-writer contract as obs::Counter. Events that target an
 * out-of-range core are counted in droppedEvents() instead of being
 * silently discarded, and ring wrap-around is accounted in
 * wrappedEvents() (the no-silent-caps rule).
 *
 * Determinism: events carry simulation time only -- no wall clock --
 * so same-seed runs produce byte-identical dumps.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace atmsim::util {
class JsonValue;
}

namespace atmsim::obs {

/** What happened; one byte wide so events stay 16 bytes. */
enum class FlightEventKind : std::uint8_t {
    Margin,      ///< Worst CPM count sampled at stats cadence.
    Fmax,        ///< Effective core frequency (GHz) at stats cadence.
    DroopEnter,  ///< Core voltage fell below the droop threshold.
    DroopExit,   ///< Core voltage recovered above the threshold.
    Violation,   ///< Timing margin violated (value = deficit ps).
    Quarantine,  ///< Safety monitor quarantined the core.
    Fallback,    ///< Safety monitor entered fallback mode.
    Recovery,    ///< Safety monitor recovered the core.
    Anomaly,     ///< Safety monitor flagged a sensor anomaly.
    FaultInject, ///< Campaign fault activated (value = fault index).
    FaultRevert, ///< Campaign fault expired (value = fault index).
    FastForwardEnter, ///< Sampled mode began fast-forwarding
                      ///  (value = start step).
    FastForwardExit,  ///< Sampled mode resumed cycle stepping
                      ///  (value = steps fast-forwarded).
};

/** Number of distinct event kinds. */
inline constexpr int kFlightEventKinds = 13;

/**
 * Printable (and parseable) kind name, e.g. "droop_enter". Returns
 * "unknown" for an out-of-range value: this runs on the crash-dump
 * signal path, so it degrades instead of aborting.
 */
[[nodiscard]] const char *flightEventKindName(FlightEventKind kind);

/**
 * Parse a kind name written by flightEventKindName(). Returns false
 * (leaving `out` untouched) for unknown names.
 */
[[nodiscard]] bool flightEventKindFromName(std::string_view name,
                                           FlightEventKind &out);

/** One recorded event. Sim-time only; 16 bytes. */
struct FlightEvent
{
    double tNs = 0.0; ///< Simulation time of the event.
    float value = 0.0F;
    std::int16_t core = 0;
    FlightEventKind kind = FlightEventKind::Margin;
};

/**
 * Fixed-size per-core event ring.
 *
 * Capacity is fixed at construction (cores x perCoreCapacity slots,
 * preallocated); record() never allocates, never locks, and never
 * fails -- old events are overwritten oldest-first and the overwrite
 * count is kept. writeJson() is safe to call from the bench signal
 * path: it reads atomics and preallocated slots only.
 */
class FlightRecorder
{
  public:
    /** Schema tag stamped into every dump. */
    static constexpr const char *kDumpSchema = "atmsim-flight-v1";

    FlightRecorder(int cores, int perCoreCapacity = 256);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Record one event on `core` at simulation time `t_ns`. O(1),
     * lock-free, allocation-free. Out-of-range cores increment
     * droppedEvents() instead.
     */
    // atmlint: contract(flight_record)
    void
    record(int core, FlightEventKind kind, double t_ns,
           double value = 0.0) noexcept
    {
        if (core < 0 || core >= cores_) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        const long seq = next_[static_cast<std::size_t>(core)].fetch_add(
            1, std::memory_order_relaxed);
        FlightEvent &slot =
            events_[static_cast<std::size_t>(core) *
                        static_cast<std::size_t>(capacity_) +
                    static_cast<std::size_t>(seq % capacity_)];
        slot.tNs = t_ns;
        slot.value = static_cast<float>(value);
        slot.core = static_cast<std::int16_t>(core);
        slot.kind = kind;
    }

    /** Ask the owner to dump at the next output point. */
    void
    requestDump() noexcept
    {
        dumpRequested_.store(true, std::memory_order_relaxed);
    }

    /** True once requestDump() fired (sticky until clear()). */
    [[nodiscard]] bool
    dumpRequested() const noexcept
    {
        return dumpRequested_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] int cores() const { return cores_; }
    [[nodiscard]] int perCoreCapacity() const { return capacity_; }

    /** Events ever recorded (excluding dropped ones). */
    [[nodiscard]] long totalEvents() const;

    /** Events overwritten by ring wrap-around. */
    [[nodiscard]] long wrappedEvents() const;

    /** Events rejected for an out-of-range core index. */
    [[nodiscard]] long
    droppedEvents() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /**
     * Write the dump as one JSON document: header counters plus, per
     * core, the retained events oldest-first. Signal-safe by the
     * bench handler's documented trade: no locks, no allocation
     * beyond the shared JsonWriter machinery already accepted on
     * that path.
     */
    void writeJson(std::ostream &os) const;

    /** Forget everything (events, counters, dump request). */
    void clear();

    // --- Parsed dump (tests / tooling) ---------------------------------

    /** One event as read back from a dump. */
    struct DumpEvent
    {
        double tNs = 0.0;
        double value = 0.0;
        FlightEventKind kind = FlightEventKind::Margin;
    };

    /** One core's retained window, oldest-first. */
    struct DumpCore
    {
        int core = 0;
        long recorded = 0; ///< Events ever recorded on this core.
        std::vector<DumpEvent> events;
    };

    /** A whole dump as read back from JSON. */
    struct Dump
    {
        int cores = 0;
        int capacity = 0;
        long totalEvents = 0;
        long wrappedEvents = 0;
        long droppedEvents = 0;
        std::vector<DumpCore> perCore;

        /**
         * Parse a document written by writeJson(). Throws
         * (util::JsonTypeError / util::FatalError) on structural
         * violations.
         */
        [[nodiscard]] static Dump fromJson(const util::JsonValue &value);
    };

  private:
    int cores_;
    int capacity_;
    std::vector<FlightEvent> events_;
    std::vector<std::atomic<long>> next_;
    std::atomic<long> dropped_{0};
    std::atomic<bool> dumpRequested_{false};
};

} // namespace atmsim::obs
