#include "core/manager.h"

#include <algorithm>

#include "chip/pstate.h"
#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::core {

const char *
scenarioName(Scenario scenario)
{
    switch (scenario) {
      case Scenario::StaticMargin: return "static-margin";
      case Scenario::DefaultAtmUnmanaged: return "default-atm";
      case Scenario::FineTunedUnmanaged: return "fine-tuned-unmanaged";
      case Scenario::ManagedMax: return "managed-max";
      case Scenario::ManagedBalanced: return "managed-balanced";
    }
    return "?";
}

AtmManager::AtmManager(chip::Chip *target, LimitTable limits, int rollback)
    : chip_(target), governor_(target, std::move(limits), rollback),
      freqPredictor_([&] {
          // Fit the frequency model on the deployed (fine-tuned)
          // configuration: the intercept b encodes each core's CPM
          // setting (Eq. 1).
          governor_.apply(GovernorPolicy::FineTuned);
          return FreqPredictor::fit(target);
      }())
{
}

const PerfPredictor &
AtmManager::perfPredictor(const workload::WorkloadTraits &traits)
{
    for (const auto &cached : perfCache_) {
        if (&cached.traits() == &traits)
            return cached;
    }
    perfCache_.push_back(PerfPredictor::fit(traits));
    return perfCache_.back();
}

bool
AtmManager::colocationAllowed(const workload::WorkloadTraits &critical,
                              const workload::WorkloadTraits &background)
{
    return !(critical.memIntensive && background.memIntensive);
}

int
AtmManager::pickCriticalCore(const ScheduleRequest &request) const
{
    std::vector<int> candidates;
    if (request.policy == GovernorPolicy::Conservative) {
        candidates = governor_.robustCores();
        if (candidates.empty()) {
            util::warn("no robust cores; falling back to all cores");
        }
    }
    if (candidates.empty()) {
        for (int c = 0; c < chip_->coreCount(); ++c)
            candidates.push_back(c);
    }
    const std::vector<int> red =
        governor_.reductions(request.policy, request.critical);
    int best = candidates.front();
    double best_f = -1.0;
    for (int c : candidates) {
        const double f =
            chip_->core(c)
                .silicon()
                .atmFrequencyMhz(
                    util::CpmSteps{red[static_cast<std::size_t>(c)]}, 1.0)
                .value();
        if (f > best_f) {
            best_f = f;
            best = c;
        }
    }
    return best;
}

void
AtmManager::placeBackground(const ScheduleRequest &request,
                            int critical_core)
{
    if (!request.background)
        return;
    if (!colocationAllowed(*request.critical, *request.background)) {
        util::warn("co-locating two memory-intensive workloads (",
                   request.critical->name, ", ",
                   request.background->name,
                   "); memory interference is outside this model");
    }
    for (int c = 0; c < chip_->coreCount(); ++c) {
        if (c != critical_core)
            chip_->assignWorkload(c, request.background);
    }
}

ScenarioResult
AtmManager::finish(Scenario scenario, const ScheduleRequest &request,
                   int critical_core, double budget_w)
{
    const chip::ChipSteadyState st = chip_->solveSteadyState();
    ScenarioResult result;
    result.scenario = scenario;
    result.criticalCore = critical_core;
    result.criticalFreqMhz =
        st.coreFreqMhz[static_cast<std::size_t>(critical_core)].value();
    result.criticalPerf =
        request.critical->perfRelative(result.criticalFreqMhz);
    result.chipPowerW = st.chipPowerW.value();
    result.powerBudgetW = budget_w;
    result.qosMet = result.criticalPerf >= request.qosTarget - 1e-9;
    result.backgroundCapMhz.assign(
        static_cast<std::size_t>(chip_->coreCount()), 0.0);
    for (int c = 0; c < chip_->coreCount(); ++c) {
        if (c == critical_core)
            continue;
        const chip::AtmCore &core = chip_->core(c);
        if (core.mode() == chip::CoreMode::FixedFrequency) {
            result.backgroundCapMhz[static_cast<std::size_t>(c)] =
                core.fixedFrequencyMhz().value();
        } else if (core.mode() == chip::CoreMode::Gated) {
            result.backgroundCapMhz[static_cast<std::size_t>(c)] = -1.0;
        }
    }
    return result;
}

ScenarioResult
AtmManager::evaluate(Scenario scenario, const ScheduleRequest &request)
{
    if (!request.critical)
        util::fatal("schedule request has no critical workload");
    chip_->clearAssignments();

    switch (scenario) {
      case Scenario::StaticMargin: {
        governor_.apply(GovernorPolicy::StaticMargin);
        const int core = 0;
        chip_->assignWorkload(core, request.critical);
        placeBackground(request, core);
        return finish(scenario, request, core, 0.0);
      }
      case Scenario::DefaultAtmUnmanaged: {
        governor_.apply(GovernorPolicy::DefaultAtm);
        // Cores are uniform under the factory presets; placement does
        // not matter, but nothing manages background power either.
        const int core = 0;
        chip_->assignWorkload(core, request.critical);
        placeBackground(request, core);
        return finish(scenario, request, core, 0.0);
      }
      case Scenario::FineTunedUnmanaged: {
        governor_.apply(GovernorPolicy::FineTuned);
        // Careless placement: the scheduler is oblivious to the
        // exposed speed variation; model it as landing on the core of
        // median deployed speed.
        const std::vector<int> red =
            governor_.reductions(GovernorPolicy::FineTuned);
        std::vector<std::pair<double, int>> speed;
        for (int c = 0; c < chip_->coreCount(); ++c) {
            speed.emplace_back(
                chip_->core(c)
                    .silicon()
                    .atmFrequencyMhz(
                        util::CpmSteps{red[static_cast<std::size_t>(c)]},
                        1.0)
                    .value(),
                c);
        }
        std::sort(speed.begin(), speed.end());
        const int core = speed[speed.size() / 2].second;
        chip_->assignWorkload(core, request.critical);
        placeBackground(request, core);
        return finish(scenario, request, core, 0.0);
      }
      case Scenario::ManagedMax: {
        governor_.apply(request.policy, request.critical);
        const int core = pickCriticalCore(request);
        chip_->assignWorkload(core, request.critical);
        placeBackground(request, core);
        // Background power is minimized: lowest p-state.
        for (int c = 0; c < chip_->coreCount(); ++c) {
            if (c == core || chip_->assignment(c).idle())
                continue;
            chip_->core(c).setMode(chip::CoreMode::FixedFrequency);
            chip_->core(c).setFixedFrequencyMhz(chip::lowestPStateMhz());
        }
        return finish(scenario, request, core, 0.0);
      }
      case Scenario::ManagedBalanced: {
        governor_.apply(request.policy, request.critical);
        const int core = pickCriticalCore(request);
        chip_->assignWorkload(core, request.critical);
        placeBackground(request, core);

        // Infer the power budget that lets the critical core reach
        // the QoS frequency (Fig. 13's predictor chain).
        const double f_req = perfPredictor(*request.critical)
                                 .requiredFreqMhz(request.qosTarget);
        const double budget_w = freqPredictor_.powerBudgetW(core, f_req);

        // Throttle background cores (highest power first) by one
        // p-state at a time until the critical app meets its target;
        // gate as the last resort. The budget tells the manager how
        // deep the throttling will have to go; the loop verifies the
        // outcome against the QoS goal itself.
        for (int iter = 0; iter < 256; ++iter) {
            const chip::ChipSteadyState st = chip_->solveSteadyState();
            const double perf = request.critical->perfRelative(
                st.coreFreqMhz[static_cast<std::size_t>(core)].value());
            if (perf >= request.qosTarget - 1e-9)
                break;
            // Find the hungriest throttleable background core.
            int victim = -1;
            double victim_power = 0.0;
            bool all_floor = true;
            for (int c = 0; c < chip_->coreCount(); ++c) {
                if (c == core || chip_->assignment(c).idle())
                    continue;
                const chip::AtmCore &bg = chip_->core(c);
                if (bg.mode() == chip::CoreMode::Gated)
                    continue;
                const bool at_floor =
                    bg.mode() == chip::CoreMode::FixedFrequency
                    && bg.fixedFrequencyMhz()
                           <= chip::lowestPStateMhz() + util::Mhz{1e-9};
                if (!at_floor)
                    all_floor = false;
                const double p =
                    st.corePowerW[static_cast<std::size_t>(c)].value();
                if (!at_floor && p > victim_power) {
                    victim_power = p;
                    victim = c;
                }
            }
            if (victim < 0) {
                if (all_floor) {
                    // Last resort: gate the hungriest core.
                    int gate = -1;
                    double gate_power = 0.0;
                    for (int c = 0; c < chip_->coreCount(); ++c) {
                        if (c == core || chip_->assignment(c).idle())
                            continue;
                        if (chip_->core(c).mode()
                            == chip::CoreMode::Gated)
                            continue;
                        const double p =
                            st.corePowerW[static_cast<std::size_t>(c)]
                                .value();
                        if (p > gate_power) {
                            gate_power = p;
                            gate = c;
                        }
                    }
                    if (gate < 0)
                        break;
                    chip_->core(gate).setMode(chip::CoreMode::Gated);
                    continue;
                }
                break;
            }
            chip::AtmCore &bg = chip_->core(victim);
            if (bg.mode() == chip::CoreMode::AtmOverclock) {
                bg.setMode(chip::CoreMode::FixedFrequency);
                bg.setFixedFrequencyMhz(chip::highestPStateMhz());
            } else {
                bg.setFixedFrequencyMhz(chip::pstateAtOrBelowMhz(
                    bg.fixedFrequencyMhz() - util::Mhz{1.0}));
            }
        }
        return finish(scenario, request, core, budget_w);
      }
    }
    util::panic("unreachable scenario");
}

} // namespace atmsim::core
