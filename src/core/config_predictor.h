/**
 * @file
 * Per-application CPM configuration prediction -- the future work the
 * paper defers in Sec. VII-A ("one can try to predict each
 * application's best CPM setting on each core... such a prediction
 * scheme demands perfect prediction accuracy because any
 * misprediction can lead to system failure").
 *
 * Model: on a given core, the clock period below which an application
 * violates is linear in the application's characteristic droop,
 * T(D) = a + b*D (static exposure plus droop sensitivity). A probe
 * application whose characterized limit is L does not reveal T(D_p)
 * exactly -- only the interval (period(L+1), period(L)] it must lie
 * in. Fitting therefore keeps the *full feasible set* of (a, b) pairs
 * consistent with every probe's interval, and predicts with the most
 * pessimistic feasible model for the target application's droop. The
 * true model is feasible by construction, so the prediction can never
 * exceed the real limit: it is conservative by construction, which is
 * the property the paper says a deployable predictor must have.
 */

#pragma once

#include <vector>

#include "chip/chip.h"
#include "workload/workload.h"

namespace atmsim::core {

/** One probe observation on a core: a droop level and the crossing
 *  interval its characterized limit implies. */
struct ProbeObservation
{
    double droopMv = 0.0;
    double periodLoPs = 0.0; ///< exclusive lower crossing bound
    double periodHiPs = 0.0; ///< inclusive upper crossing bound
};

/** Fitted per-core model: the probe constraint set. */
struct FittedCoreModel
{
    std::string coreName;
    std::vector<ProbeObservation> probes;
    int ubenchLimit = 0; ///< prediction ceiling

    /**
     * Most pessimistic feasible required period for an application
     * droop: max of a + b*droop over all (a, b >= 0) satisfying every
     * probe interval.
     */
    [[nodiscard]] double requiredPeriodPs(double droop_mv) const;
};

/** Predicts per-<app, core> CPM limits from probe characterizations. */
class ConfigPredictor
{
  public:
    /**
     * Fit the predictor by characterizing probe applications on every
     * core (analytic mode). At least two probes with distinct droop
     * levels are required; more probes tighten the feasible set.
     *
     * @param target Chip (not owned).
     * @param probes Probe applications, any droop order.
     */
    [[nodiscard]] static ConfigPredictor fit(
        chip::Chip *target,
        const std::vector<const workload::WorkloadTraits *> &probes);

    /**
     * Predict a safe CPM reduction for an application on a core.
     * Guaranteed not to exceed the characterized limit (conservative
     * by construction).
     */
    [[nodiscard]]
    int predictLimit(int core, const workload::WorkloadTraits &app) const;

    /** The fitted per-core model. */
    [[nodiscard]] const FittedCoreModel &modelFor(int core) const;

    [[nodiscard]]
    int coreCount() const { return static_cast<int>(models_.size()); }

  private:
    chip::Chip *chip_ = nullptr;
    std::vector<FittedCoreModel> models_;
};

/** Accuracy summary of a predictor against full characterization. */
struct PredictionAccuracy
{
    int evaluated = 0;
    int exact = 0;        ///< predicted == characterized
    int conservative = 0; ///< predicted < characterized (safe)
    int optimistic = 0;   ///< predicted > characterized (UNSAFE)

    [[nodiscard]] double exactFrac() const;

    /** Mean steps of performance left on the table by conservatism. */
    double meanConservativeGap = 0.0;
};

/**
 * Evaluate a predictor against the characterizer over a set of apps.
 */
[[nodiscard]] PredictionAccuracy evaluatePredictor(
    const ConfigPredictor &predictor, chip::Chip *target,
    const std::vector<const workload::WorkloadTraits *> &apps);

} // namespace atmsim::core
