#include "core/safety_monitor.h"

#include <algorithm>
#include <cmath>

#include "circuit/constants.h"
#include "util/logging.h"

namespace atmsim::core {

const char *
coreSafetyStateName(CoreSafetyState state)
{
    switch (state) {
      case CoreSafetyState::Deployed: return "deployed";
      case CoreSafetyState::Quarantined: return "quarantined";
      case CoreSafetyState::Fallback: return "fallback";
      case CoreSafetyState::Reentry: return "reentry";
    }
    return "?";
}

SafetyMonitor::SafetyMonitor(chip::Chip *target,
                             std::vector<int> target_reductions,
                             const SafetyMonitorConfig &config)
    : chip_(target), config_(config)
{
    if (!chip_)
        util::panic("SafetyMonitor constructed with null chip");
    if (static_cast<int>(target_reductions.size()) != chip_->coreCount())
        util::fatal("SafetyMonitor: ", target_reductions.size(),
                    " target reductions for ", chip_->coreCount(),
                    " cores");
    if (config_.backoffBaseUs <= 0.0 || config_.backoffMultiplier < 1.0
        || config_.stageIntervalUs <= 0.0)
        util::fatal("SafetyMonitor: non-positive backoff/stage timing");
    cores_.resize(target_reductions.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (target_reductions[i] < 0)
            util::fatal("SafetyMonitor: negative target reduction for"
                        " core ", i);
        cores_[i].target = target_reductions[i];
        cores_[i].current = target_reductions[i];
        cores_[i].backoffUs = config_.backoffBaseUs;
    }
}

void
SafetyMonitor::rearm()
{
    for (CoreState &cs : cores_) {
        const int target = cs.target;
        cs = CoreState{};
        cs.target = target;
        cs.current = target;
        cs.backoffUs = config_.backoffBaseUs;
    }
    counters_ = sim::SafetyCounters{};
}

CoreSafetyState
SafetyMonitor::state(int core) const
{
    if (core < 0 || core >= static_cast<int>(cores_.size()))
        util::fatal("SafetyMonitor::state: core ", core,
                    " out of range");
    return cores_[static_cast<std::size_t>(core)].state;
}

double
SafetyMonitor::backoffUs(int core) const
{
    if (core < 0 || core >= static_cast<int>(cores_.size()))
        util::fatal("SafetyMonitor::backoffUs: core ", core,
                    " out of range");
    return cores_[static_cast<std::size_t>(core)].backoffUs;
}

void
SafetyMonitor::setObservability(const obs::Observability &sinks)
{
    obs_ = sinks;
    traceTrack_ =
        obs_.trace ? obs_.trace->track("safety_monitor") : -1;
    quarantineCounter_ = nullptr;
    fallbackCounter_ = nullptr;
    recoveryCounter_ = nullptr;
    anomalyCounter_ = nullptr;
    if (obs_.metrics) {
        quarantineCounter_ =
            &obs_.metrics->counter("safety_monitor.quarantine");
        fallbackCounter_ =
            &obs_.metrics->counter("safety_monitor.fallback");
        recoveryCounter_ =
            &obs_.metrics->counter("safety_monitor.recovery");
        anomalyCounter_ =
            &obs_.metrics->counter("safety_monitor.anomaly");
    }
}

void
SafetyMonitor::note(obs::Counter *counter, const char *transition,
                    obs::FlightEventKind kind, int core, double now_ns)
{
    if (counter)
        counter->inc();
    if (obs_.trace)
        obs_.trace->instant(transition, traceTrack_, now_ns, core);
    if (obs_.flight)
        obs_.flight->record(core, kind, now_ns);
}

void
SafetyMonitor::markDegraded(CoreState &cs, double now_ns)
{
    if (cs.degradedSinceNs < 0.0)
        cs.degradedSinceNs = now_ns;
}

void
SafetyMonitor::restartAtm(int core, int reduction)
{
    chip::AtmCore &c = chip_->core(core);
    c.setMode(chip::CoreMode::AtmOverclock);
    c.setCpmReduction(util::CpmSteps{reduction});
    c.resetClock(chip_->pdn().coreV(core),
                 chip_->thermal().coreTempC(core));
}

void
SafetyMonitor::quarantine(int core, double now_ns)
{
    CoreState &cs = cores_[static_cast<std::size_t>(core)];
    markDegraded(cs, now_ns);
    cs.current = 0;
    restartAtm(core, 0);
    cs.state = CoreSafetyState::Quarantined;
    cs.deadlineNs = now_ns + cs.backoffUs * 1e3;
    cs.insensitiveSamples = 0;
    ++counters_.quarantines;
    note(quarantineCounter_, "quarantine",
         obs::FlightEventKind::Quarantine, core, now_ns);
}

void
SafetyMonitor::escalate(int core, double now_ns)
{
    CoreState &cs = cores_[static_cast<std::size_t>(core)];
    markDegraded(cs, now_ns);
    chip::AtmCore &c = chip_->core(core);
    c.setMode(chip::CoreMode::FixedFrequency);
    c.setFixedFrequencyMhz(circuit::kStaticMarginMhz);
    c.resetClock(chip_->pdn().coreV(core),
                 chip_->thermal().coreTempC(core));
    cs.state = CoreSafetyState::Fallback;
    cs.backoffUs = std::min(cs.backoffUs * config_.backoffMultiplier,
                            config_.maxBackoffUs);
    cs.deadlineNs = now_ns + cs.backoffUs * 1e3;
    cs.insensitiveSamples = 0;
    ++counters_.fallbacks;
    note(fallbackCounter_, "fallback", obs::FlightEventKind::Fallback,
         core, now_ns);
}

void
SafetyMonitor::demote(int core, double now_ns)
{
    if (core < 0 || core >= static_cast<int>(cores_.size()))
        util::fatal("SafetyMonitor: violation on core ", core,
                    " out of range");
    CoreState &cs = cores_[static_cast<std::size_t>(core)];
    switch (cs.state) {
      case CoreSafetyState::Deployed:
        // First strike: pull back to the factory-default ATM
        // configuration, which keeps the full inserted-delay margin.
        quarantine(core, now_ns);
        break;
      case CoreSafetyState::Quarantined:
      case CoreSafetyState::Reentry:
        // The safe default also misbehaved (or re-entry was
        // premature): the sensor itself cannot be trusted, so turn
        // ATM off entirely and park at the static-margin p-state.
        escalate(core, now_ns);
        break;
      case CoreSafetyState::Fallback:
        // A strike at static margin should not happen (ATM is off);
        // keep waiting with a fresh, longer backoff.
        escalate(core, now_ns);
        break;
    }
}

// The violation callback runs inside the engine's timing-race pass.
// atmlint: contract(engine_step)
bool
SafetyMonitor::onViolation(const sim::ViolationEvent &event)
{
    demote(event.core, event.timeNs);
    return true;
}

// Runs every stats cadence inside the step loop.
// atmlint: contract(engine_step)
void
SafetyMonitor::onSample(util::Nanoseconds now,
                        const std::vector<sim::CoreSample> &cores)
{
    (void)cores; // The monitor reads the chip sensors directly.
    const double now_ns = now.value();
    const int n = chip_->coreCount();
    for (int core = 0; core < n; ++core) {
        CoreState &cs = cores_[static_cast<std::size_t>(core)];
        chip::AtmCore &c = chip_->core(core);
        if (c.mode() == chip::CoreMode::Gated)
            continue;

        // --- Recovery timers.
        if (cs.state == CoreSafetyState::Fallback
            && now_ns >= cs.deadlineNs) {
            // Backoff expired: probe the sensor at the safe default.
            cs.current = 0;
            restartAtm(core, 0);
            cs.state = CoreSafetyState::Quarantined;
            cs.deadlineNs = now_ns + config_.stageIntervalUs * 1e3;
            cs.insensitiveSamples = 0;
        } else if (cs.state == CoreSafetyState::Quarantined
                   && now_ns >= cs.deadlineNs) {
            cs.state = CoreSafetyState::Reentry;
            cs.deadlineNs = now_ns;
        }
        if (cs.state == CoreSafetyState::Reentry
            && now_ns >= cs.deadlineNs) {
            if (cs.current < cs.target) {
                // One CPM step per stage back toward the fine-tuned
                // limit; any strike along the way escalates.
                ++cs.current;
                restartAtm(core, cs.current);
                cs.deadlineNs = now_ns + config_.stageIntervalUs * 1e3;
                ++counters_.reentrySteps;
            } else {
                // Survived a full stage at the target: recovered.
                cs.state = CoreSafetyState::Deployed;
                cs.backoffUs = config_.backoffBaseUs;
                if (cs.degradedSinceNs >= 0.0) {
                    counters_.degradedTimeNs +=
                        now_ns - cs.degradedSinceNs;
                    cs.degradedSinceNs = -1.0;
                }
                ++counters_.recoveries;
                note(recoveryCounter_, "recovery",
                     obs::FlightEventKind::Recovery, core, now_ns);
            }
        }

        // --- Anomaly detection (only meaningful while ATM drives the
        // clock; in Fallback the DPLL is out of the loop).
        if (c.mode() != chip::CoreMode::AtmOverclock)
            continue;
        const util::Volts v = chip_->pdn().coreV(core);
        const util::Celsius t_c = chip_->thermal().coreTempC(core);
        bool anomaly = false;

        // Phantom-margin guard: the analytic steady state at nominal
        // supply bounds how fast an honest ATM loop runs for the
        // programmed reduction (droops only ever slow it down, and
        // overshoot above nominal is millivolts). Clearing it means
        // the loop is acting on margin that is not really there.
        const double honest_mhz =
            c.silicon()
                .atmFrequencyMhz(
                    c.cpmReduction(),
                    chip_->delayModel().factor(circuit::kVddNominal,
                                               t_c))
                .value();
        if (c.frequencyMhz().value()
            > honest_mhz * (1.0 + config_.freqGuardFrac))
            anomaly = true;

        // Stuck-sensor guard: probe every site at a slightly longer
        // and a much shorter period. The short probe removes several
        // chain-lengths of slack, so a healthy site must lose counts
        // there -- even one saturated at the chain length under the
        // long probe -- while a pinned latch reads the same at both.
        // Probes agreeing at zero (a deep droop eating all slack) are
        // excluded: a canary stuck at zero only drags the loop slow,
        // a performance fault rather than a safety hazard.
        const util::Picoseconds period = c.periodPs();
        const util::Picoseconds slow_ps =
            period * (1.0 + config_.probePeriodFrac);
        const util::Picoseconds fast_ps =
            period * (1.0 - 4.0 * config_.probePeriodFrac);
        bool insensitive = false;
        for (std::size_t s = 0; s < c.cpmBank().siteCount(); ++s) {
            const cpm::Cpm &site =
                c.cpmBank().site(static_cast<int>(s));
            const int slow = site.outputCount(slow_ps, v, t_c);
            const int fast = site.outputCount(fast_ps, v, t_c);
            if (slow == fast && slow > 0) {
                insensitive = true;
                break;
            }
        }
        if (insensitive) {
            if (++cs.insensitiveSamples >= config_.stuckSampleWindow)
                anomaly = true;
        } else {
            cs.insensitiveSamples = 0;
        }

        if (anomaly) {
            ++counters_.anomalies;
            note(anomalyCounter_, "anomaly",
                 obs::FlightEventKind::Anomaly, core, now_ns);
            cs.insensitiveSamples = 0;
            demote(core, now_ns);
        }
    }
}

void
SafetyMonitor::finish(util::Nanoseconds end,
                      sim::SafetyCounters &counters)
{
    const double end_ns = end.value();
    // Close any still-open degraded windows against the end of the run.
    for (CoreState &cs : cores_) {
        if (cs.degradedSinceNs >= 0.0) {
            counters_.degradedTimeNs += end_ns - cs.degradedSinceNs;
            cs.degradedSinceNs = end_ns;
        }
    }
    counters.anomalies += counters_.anomalies;
    counters.quarantines += counters_.quarantines;
    counters.fallbacks += counters_.fallbacks;
    counters.reentrySteps += counters_.reentrySteps;
    counters.recoveries += counters_.recoveries;
    counters.degradedTimeNs += counters_.degradedTimeNs;
}

} // namespace atmsim::core
