#include "core/stress_test.h"

#include <algorithm>

#include "util/logging.h"
#include "workload/catalog.h"

namespace atmsim::core {

double
DeployedConfig::speedDifferentialMhz() const
{
    if (idleFreqMhz.empty())
        return 0.0;
    const auto [lo, hi] =
        std::minmax_element(idleFreqMhz.begin(), idleFreqMhz.end());
    return *hi - *lo;
}

int
DeployedConfig::fastestCore() const
{
    if (idleFreqMhz.empty())
        util::fatal("empty deployed config");
    return static_cast<int>(std::distance(
        idleFreqMhz.begin(),
        std::max_element(idleFreqMhz.begin(), idleFreqMhz.end())));
}

int
DeployedConfig::slowestCore() const
{
    if (idleFreqMhz.empty())
        util::fatal("empty deployed config");
    return static_cast<int>(std::distance(
        idleFreqMhz.begin(),
        std::min_element(idleFreqMhz.begin(), idleFreqMhz.end())));
}

StressTester::StressTester(chip::Chip *target,
                           const CharacterizerConfig &config)
    : chip_(target), characterizer_(target, config)
{
    if (!target)
        util::panic("StressTester constructed with null chip");
}

int
StressTester::stressLimit(int core)
{
    // The combined stress suite: the voltage virus dominates, the
    // power virus catches thermally-sensitive parts, and the ISA
    // verification suite covers every circuit path (Sec. VII-A).
    const workload::WorkloadTraits &virus = workload::voltageVirus();
    const workload::WorkloadTraits &power_virus =
        workload::findWorkload("power_virus");
    const workload::WorkloadTraits &isa_suite =
        workload::findWorkload("isa_suite");
    const int ceiling = chip_->core(core).silicon().presetSteps;

    int limit = ceiling;
    for (const workload::WorkloadTraits *mark :
         {&virus, &power_virus, &isa_suite}) {
        for (int rep = 0; rep < characterizer_.config().reps; ++rep) {
            int k = 0;
            while (k < ceiling
                   && characterizer_.trialSafe(core, k + 1, *mark, rep)) {
                ++k;
            }
            limit = std::min(limit, k);
        }
    }
    return limit;
}

bool
StressTester::confirmSafe(int core, int reduction)
{
    const workload::WorkloadTraits &virus = workload::voltageVirus();
    for (int rep = 0; rep < characterizer_.config().reps; ++rep) {
        if (!characterizer_.trialSafe(core, reduction, virus, rep))
            return false;
    }
    return true;
}

DeployedConfig
StressTester::deriveDeployedConfig(int rollback_steps)
{
    if (rollback_steps < 0)
        util::fatal("rollback must be non-negative, got ", rollback_steps);
    DeployedConfig config;
    config.chipName = chip_->name();
    for (int c = 0; c < chip_->coreCount(); ++c) {
        const int limit = stressLimit(c);
        const int deployed = std::max(limit - rollback_steps, 0);
        config.reductionPerCore.push_back(deployed);
        config.idleFreqMhz.push_back(
            chip_->core(c)
                .silicon()
                .atmFrequencyMhz(util::CpmSteps{deployed}, 1.0)
                .value());
    }
    return config;
}

chip::ChipSteadyState
StressTester::stressEnvironment(const std::vector<int> &reductions)
{
    if (static_cast<int>(reductions.size()) != chip_->coreCount())
        util::fatal("stressEnvironment: need one reduction per core");
    const workload::WorkloadTraits &virus = workload::voltageVirus();
    chip_->clearAssignments();
    for (int c = 0; c < chip_->coreCount(); ++c) {
        chip_->core(c).setMode(chip::CoreMode::AtmOverclock);
        chip_->core(c).setCpmReduction(
            util::CpmSteps{reductions[static_cast<std::size_t>(c)]});
        chip_->assignWorkload(c, &virus);
    }
    chip::ChipSteadyState st = chip_->solveSteadyState();
    chip_->clearAssignments();
    for (int c = 0; c < chip_->coreCount(); ++c)
        chip_->core(c).setCpmReduction(util::CpmSteps{0});
    return st;
}

} // namespace atmsim::core
