/**
 * @file
 * CPM-setting governors (Sec. VII-C / Fig. 13): the user-selectable
 * policy that decides each core's deployed ATM configuration.
 *
 *  - StaticMargin: ATM off; all cores at the fixed 4.2 GHz p-state.
 *  - DefaultAtm: factory CPM presets (uniform ~4.6 GHz idle).
 *  - FineTuned: the per-core stress-test (thread-worst) limits; the
 *    paper's default deployment policy.
 *  - Aggressive: the running application's own most aggressive safe
 *    configuration per core (higher performance, application-
 *    specific).
 *  - Conservative: thread-worst limits, but scheduling is restricted
 *    to the robust cores identified during characterization.
 */

#pragma once

#include <vector>

#include "chip/chip.h"
#include "core/limit_table.h"
#include "obs/phase.h"
#include "workload/workload.h"

namespace atmsim::core {

/** Deployment policies. */
enum class GovernorPolicy {
    StaticMargin,
    DefaultAtm,
    FineTuned,
    Aggressive,
    Conservative,
};

/** Number of deployment policies (for per-policy tables). */
inline constexpr int kGovernorPolicyCount = 5;

/** Printable policy name. */
[[nodiscard]] const char *governorPolicyName(GovernorPolicy policy);

/** Applies deployment policies to a chip. */
class Governor
{
  public:
    /**
     * @param target Chip to govern (not owned).
     * @param limits Characterization results for the chip.
     * @param rollback Extra safety rollback applied on top of the
     *        fine-tuned limits (Sec. VII-A).
     */
    Governor(chip::Chip *target, LimitTable limits, int rollback = 0);

    /**
     * Compute the per-core CPM reductions a policy implies.
     *
     * @param policy Deployment policy.
     * @param app Running application (required for Aggressive).
     */
    [[nodiscard]] std::vector<int> reductions(GovernorPolicy policy,
                                const workload::WorkloadTraits *app
                                = nullptr) const;

    /**
     * Apply a policy: set core modes, fixed frequencies and CPM
     * reductions on the chip.
     */
    void apply(GovernorPolicy policy,
               const workload::WorkloadTraits *app = nullptr);

    /**
     * Robust cores (Sec. VI): those whose uBench-to-worst rollback
     * spread is at most the threshold, i.e. whose control loops
     * tolerate any application's system effects.
     */
    [[nodiscard]] std::vector<int> robustCores(int max_spread = 1) const;

    [[nodiscard]] const LimitTable &limits() const { return limits_; }
    [[nodiscard]] int rollback() const { return rollback_; }

    /** Report policy applications into metrics/trace sinks. */
    void setObservability(const obs::Observability &sinks);

  private:
    chip::Chip *chip_;
    LimitTable limits_;
    int rollback_;
    obs::Observability obs_;
    int traceTrack_ = -1;

    // Counters resolved once in setObservability so apply() never
    // forms a metric name (registry lookups allocate and lock).
    obs::Counter *appliesCounter_ = nullptr;
    obs::Counter *policyCounters_[kGovernorPolicyCount] = {};
};

} // namespace atmsim::core
