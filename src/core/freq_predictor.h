/**
 * @file
 * Per-core frequency predictor (Sec. VII-B, Eq. 1): under ATM, a
 * core's steady frequency is linear in total chip power, because the
 * dominant long-term effect is the IR voltage drop across the shared
 * power delivery path:
 *
 *   f = k * (V_vrm - R * P / V_vrm) = -k' * P + b
 *
 * The intercept b captures the core's CPM configuration (its static
 * fine-tuning), the slope k' the shared PDN resistance (~2 MHz/W).
 */

#pragma once

#include <vector>

#include "chip/chip.h"
#include "util/linear_fit.h"

namespace atmsim::core {

/** Linear frequency-vs-chip-power models for every core of a chip. */
class FreqPredictor
{
  public:
    /**
     * Fit the predictor by sweeping chip power: background load is
     * varied across the other cores, the steady state is solved, and
     * (chip power, core frequency) samples are regressed per core.
     *
     * @param target Chip with its CPM reductions already deployed
     *        (the fit is specific to a fine-tuned configuration).
     *        Assignments are mutated during the sweep and cleared
     *        afterwards.
     * @param sweep_points Number of load levels in the sweep.
     */
    [[nodiscard]]
    static FreqPredictor fit(chip::Chip *target, int sweep_points = 8);

    /** Predicted steady frequency of a core at a chip power (MHz). */
    [[nodiscard]] double predictMhz(int core, double chip_power_w) const;

    /**
     * Invert the model: the chip power at which a core still reaches
     * a required frequency (W). This is the power budget the manager
     * enforces for a QoS target (Sec. VII-C).
     */
    [[nodiscard]] double powerBudgetW(int core, double required_mhz) const;

    /** Per-core fitted line (slope MHz/W, intercept MHz, R^2). */
    [[nodiscard]] const util::LineFit &fitFor(int core) const;

    [[nodiscard]]
    int coreCount() const { return static_cast<int>(fits_.size()); }

  private:
    std::vector<util::LineFit> fits_;
};

} // namespace atmsim::core
