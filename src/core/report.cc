#include "core/report.h"

#include <algorithm>

#include "core/characterizer.h"
#include "core/freq_predictor.h"
#include "core/governor.h"
#include "core/stress_test.h"
#include "util/logging.h"
#include "util/table.h"

namespace atmsim::core {

void
ChipReport::print(std::ostream &os) const
{
    util::TextTable table;
    table.setHeader({"core", "preset", "idle", "uBench", "normal",
                     "worst", "deployed MHz", "k' MHz/W", "b MHz",
                     "robust"});
    for (const auto &core : cores) {
        table.addRow({core.coreName, std::to_string(core.presetSteps),
                      std::to_string(core.limits.idle),
                      std::to_string(core.limits.ubench),
                      std::to_string(core.limits.normal),
                      std::to_string(core.limits.worst),
                      util::fmtInt(core.deployedIdleMhz),
                      util::fmtFixed(core.freqSlopeMhzPerW, 2),
                      util::fmtInt(core.freqInterceptMhz),
                      core.robust ? "yes" : "no"});
    }
    table.print(os);
    os << "chip " << chipName << ": deployed speed differential "
       << util::fmtInt(speedDifferentialMhz)
       << " MHz; stress environment " << util::fmtInt(stressPowerW)
       << " W / " << util::fmtInt(stressMaxTempC) << " degC\n";
}

void
ChipReport::toCsv(std::ostream &os) const
{
    os << "chip,core,preset,idle,ubench,normal,worst,deployed_red,"
          "deployed_mhz,slope_mhz_per_w,intercept_mhz,robust\n";
    for (const auto &core : cores) {
        os << chipName << ',' << core.coreName << ','
           << core.presetSteps << ',' << core.limits.idle << ','
           << core.limits.ubench << ',' << core.limits.normal << ','
           << core.limits.worst << ',' << core.deployedReduction << ','
           << core.deployedIdleMhz << ',' << core.freqSlopeMhzPerW
           << ',' << core.freqInterceptMhz << ','
           << (core.robust ? 1 : 0) << '\n';
    }
}

ChipReport
buildChipReport(chip::Chip *target, int robust_spread)
{
    if (!target)
        util::panic("buildChipReport with null chip");

    ChipReport report;
    report.chipName = target->name();

    Characterizer characterizer(target);
    const LimitTable limits = characterizer.characterizeChip();

    StressTester tester(target);
    const DeployedConfig deployed = tester.deriveDeployedConfig();
    report.speedDifferentialMhz = deployed.speedDifferentialMhz();
    const chip::ChipSteadyState env =
        tester.stressEnvironment(deployed.reductionPerCore);
    report.stressPowerW = env.chipPowerW.value();
    report.stressMaxTempC =
        std::max_element(env.coreTempC.begin(), env.coreTempC.end())
            ->value();

    // Fit Eq. 1 on the deployed configuration.
    Governor governor(target, limits);
    governor.apply(GovernorPolicy::FineTuned);
    const FreqPredictor predictor = FreqPredictor::fit(target);

    for (int c = 0; c < target->coreCount(); ++c) {
        CoreReport core;
        core.coreName = target->core(c).name();
        core.presetSteps = target->core(c).silicon().presetSteps;
        core.limits = limits.byIndex(c);
        core.deployedReduction =
            deployed.reductionPerCore[static_cast<std::size_t>(c)];
        core.deployedIdleMhz =
            deployed.idleFreqMhz[static_cast<std::size_t>(c)];
        core.freqSlopeMhzPerW = predictor.fitFor(c).slope;
        core.freqInterceptMhz = predictor.fitFor(c).intercept;
        core.robust = core.limits.rollbackSpread() <= robust_spread;
        report.cores.push_back(std::move(core));
    }
    return report;
}

} // namespace atmsim::core
