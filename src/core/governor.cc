#include "core/governor.h"

#include <algorithm>
#include <string>

#include "circuit/constants.h"
#include "util/logging.h"
#include "variation/calibration.h"

namespace atmsim::core {

const char *
governorPolicyName(GovernorPolicy policy)
{
    switch (policy) {
      case GovernorPolicy::StaticMargin: return "static-margin";
      case GovernorPolicy::DefaultAtm: return "default-atm";
      case GovernorPolicy::FineTuned: return "fine-tuned";
      case GovernorPolicy::Aggressive: return "aggressive";
      case GovernorPolicy::Conservative: return "conservative";
    }
    return "?";
}

Governor::Governor(chip::Chip *target, LimitTable limits, int rollback)
    : chip_(target), limits_(std::move(limits)), rollback_(rollback)
{
    if (!target)
        util::panic("Governor constructed with null chip");
    if (static_cast<int>(limits_.cores.size()) != target->coreCount())
        util::fatal("limit table size does not match the chip");
    if (rollback < 0)
        util::fatal("governor rollback must be non-negative");
}

std::vector<int>
Governor::reductions(GovernorPolicy policy,
                     const workload::WorkloadTraits *app) const
{
    const int n = chip_->coreCount();
    std::vector<int> out(static_cast<std::size_t>(n), 0);
    switch (policy) {
      case GovernorPolicy::StaticMargin:
      case GovernorPolicy::DefaultAtm:
        return out;
      case GovernorPolicy::FineTuned:
      case GovernorPolicy::Conservative:
        for (int c = 0; c < n; ++c) {
            out[static_cast<std::size_t>(c)] =
                std::max(limits_.byIndex(c).worst - rollback_, 0);
        }
        return out;
      case GovernorPolicy::Aggressive: {
        if (!app)
            util::fatal("aggressive governor needs the application");
        for (int c = 0; c < n; ++c) {
            // The app's own limit: most aggressive reduction safe
            // across the whole run-noise range, capped at the
            // scenario ceiling established by characterization.
            const auto &silicon = chip_->core(c).silicon();
            const double extra = variation::scenarioExtraPs(
                silicon,
                chip::Chip::pathExposurePs(silicon, *app).value(),
                app->droopMv);
            const double worst_noise = silicon.idleNoiseFloorPs
                                     + silicon.idleNoiseRangePs;
            const int app_limit =
                variation::analyticMaxSafeReduction(
                    silicon, util::Picoseconds{extra},
                    util::Picoseconds{worst_noise})
                    .value();
            out[static_cast<std::size_t>(c)] = std::max(
                std::min(app_limit, limits_.byIndex(c).ubench)
                - rollback_, 0);
        }
        return out;
      }
    }
    util::panic("unreachable governor policy");
}

void
Governor::setObservability(const obs::Observability &sinks)
{
    obs_ = sinks;
    if (obs_.trace)
        traceTrack_ = obs_.trace->track("governor");
    appliesCounter_ = nullptr;
    for (int p = 0; p < kGovernorPolicyCount; ++p)
        policyCounters_[p] = nullptr;
    if (obs_.metrics) {
        appliesCounter_ = &obs_.metrics->counter("governor.applies");
        for (int p = 0; p < kGovernorPolicyCount; ++p) {
            policyCounters_[p] = &obs_.metrics->counter(
                std::string("governor.apply.")
                + governorPolicyName(static_cast<GovernorPolicy>(p)));
        }
    }
}

void
Governor::apply(GovernorPolicy policy, const workload::WorkloadTraits *app)
{
    if (appliesCounter_) {
        appliesCounter_->inc();
        policyCounters_[static_cast<int>(policy)]->inc();
    }
    if (obs_.trace) {
        obs_.trace->instant(governorPolicyName(policy), traceTrack_,
                            -1.0, static_cast<long>(policy));
    }
    const std::vector<int> red = reductions(policy, app);
    for (int c = 0; c < chip_->coreCount(); ++c) {
        chip::AtmCore &core = chip_->core(c);
        if (policy == GovernorPolicy::StaticMargin) {
            core.setMode(chip::CoreMode::FixedFrequency);
            core.setFixedFrequencyMhz(circuit::kStaticMarginMhz);
            core.setCpmReduction(util::CpmSteps{0});
        } else {
            core.setMode(chip::CoreMode::AtmOverclock);
            core.setCpmReduction(
                util::CpmSteps{red[static_cast<std::size_t>(c)]});
        }
    }
}

std::vector<int>
Governor::robustCores(int max_spread) const
{
    std::vector<int> out;
    for (int c = 0; c < chip_->coreCount(); ++c) {
        if (limits_.byIndex(c).rollbackSpread() <= max_spread)
            out.push_back(c);
    }
    return out;
}

} // namespace atmsim::core
