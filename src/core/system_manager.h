/**
 * @file
 * Two-socket management: the paper evaluates on one chip (P0), but a
 * deployed server schedules across sockets, each with its own power
 * delivery, its own characterization and its own exposed variation.
 * The SystemManager owns one AtmManager per chip, places a batch of
 * critical applications on the best cores server-wide, and spreads
 * background work across the remaining capacity.
 */

#pragma once

#include <memory>
#include <vector>

#include "chip/system.h"
#include "core/manager.h"

namespace atmsim::core {

/** One critical job in a batch request. */
struct CriticalJob
{
    const workload::WorkloadTraits *app = nullptr;
    double qosTarget = 1.10;
};

/** Placement decision for one critical job. */
struct JobPlacement
{
    int chip = -1;
    int core = -1;
    double predictedFreqMhz = 0.0;
    double achievedPerf = 0.0;
    bool qosMet = false;
};

/** Outcome of a batch schedule. */
struct SystemScheduleResult
{
    std::vector<JobPlacement> placements; ///< one per critical job

    /** Per-chip steady states after placement. */
    std::vector<chip::ChipSteadyState> chipStates;

    /** True when every job met its QoS target. */
    [[nodiscard]] bool allQosMet() const;
};

/** Manages a multi-chip server of fine-tuned ATM processors. */
class SystemManager
{
  public:
    /**
     * @param server Server to manage (not owned). Every chip is
     *        characterized and deployed at construction (fine-tuned
     *        thread-worst configs).
     */
    explicit SystemManager(chip::System *server);

    /**
     * Place a batch of critical jobs on the best cores server-wide
     * (greedy: fastest remaining deployed core first, jobs in
     * descending QoS-difficulty order), fill the remaining cores with
     * background work, then throttle background per chip until every
     * resident job meets its target.
     *
     * @param jobs Critical jobs (at most one per core server-wide).
     * @param background Background workload replicated on free cores
     *        (nullptr leaves them idle).
     */
    SystemScheduleResult scheduleBatch(
        const std::vector<CriticalJob> &jobs,
        const workload::WorkloadTraits *background);

    /** Per-chip manager access. */
    AtmManager &managerFor(int chip);

    /** Deployed idle frequency of a core (MHz). */
    [[nodiscard]] double deployedFreqMhz(int chip, int core) const;

    [[nodiscard]]
    int chipCount() const { return static_cast<int>(managers_.size()); }

  private:
    chip::System *server_;
    std::vector<std::unique_ptr<AtmManager>> managers_;
    std::vector<LimitTable> tables_;
};

} // namespace atmsim::core
