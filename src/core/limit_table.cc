#include "core/limit_table.h"

#include <exception>
#include <string>

#include "util/logging.h"
#include "util/table.h"

namespace atmsim::core {

const CoreLimits &
LimitTable::byIndex(int core) const
{
    if (core < 0 || core >= static_cast<int>(cores.size()))
        util::fatal("limit table: core index ", core, " out of range");
    return cores[static_cast<std::size_t>(core)];
}

const CoreLimits &
LimitTable::byName(const std::string &name) const
{
    for (const auto &c : cores) {
        if (c.coreName == name)
            return c;
    }
    util::fatal("limit table: unknown core '", name, "'");
}

void
LimitTable::print(std::ostream &os) const
{
    util::TextTable table;
    std::vector<std::string> header = {"limit"};
    for (const auto &c : cores)
        header.push_back(c.coreName);
    table.setHeader(header);

    auto add_row = [&](const std::string &label, auto getter) {
        std::vector<std::string> row = {label};
        for (const auto &c : cores)
            row.push_back(std::to_string(getter(c)));
        table.addRow(row);
    };
    add_row("idle limit", [](const CoreLimits &c) { return c.idle; });
    add_row("uBench limit", [](const CoreLimits &c) { return c.ubench; });
    add_row("thread normal", [](const CoreLimits &c) { return c.normal; });
    add_row("thread worst", [](const CoreLimits &c) { return c.worst; });
    table.print(os);
}

void
LimitTable::toCsv(std::ostream &os) const
{
    os << "chip,core,idle,ubench,normal,worst,idle_mhz,worst_mhz\n";
    for (const auto &c : cores) {
        os << chipName << ',' << c.coreName << ',' << c.idle << ','
           << c.ubench << ',' << c.normal << ',' << c.worst << ','
           << c.idleLimitFreqMhz << ',' << c.worstLimitFreqMhz << '\n';
    }
}

LimitTable
LimitTable::fromCsv(std::istream &is)
{
    LimitTable table;
    std::string line;
    if (!std::getline(is, line) || line.rfind("chip,core,", 0) != 0)
        util::fatal("limit-table CSV: missing or bad header");
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::size_t start = 0;
        for (;;) {
            const std::size_t comma = line.find(',', start);
            cells.push_back(line.substr(start, comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        if (cells.size() != 8)
            util::fatal("limit-table CSV: expected 8 cells, got ",
                        cells.size());
        try {
            CoreLimits c;
            table.chipName = cells[0];
            c.coreName = cells[1];
            c.idle = std::stoi(cells[2]);
            c.ubench = std::stoi(cells[3]);
            c.normal = std::stoi(cells[4]);
            c.worst = std::stoi(cells[5]);
            c.idleLimitFreqMhz = std::stod(cells[6]);
            c.worstLimitFreqMhz = std::stod(cells[7]);
            table.cores.push_back(std::move(c));
        } catch (const std::exception &) {
            util::fatal("limit-table CSV: malformed row '", line, "'");
        }
    }
    return table;
}

double
RollbackMatrix::appMean(std::size_t app) const
{
    if (app >= meanRollback.size())
        util::fatal("rollback matrix: app index out of range");
    double sum = 0.0;
    for (double v : meanRollback[app])
        sum += v;
    return meanRollback[app].empty()
         ? 0.0
         : sum / static_cast<double>(meanRollback[app].size());
}

double
RollbackMatrix::coreMean(std::size_t core) const
{
    if (core >= coreNames.size())
        util::fatal("rollback matrix: core index out of range");
    double sum = 0.0;
    for (const auto &row : meanRollback)
        sum += row[core];
    return meanRollback.empty()
         ? 0.0
         : sum / static_cast<double>(meanRollback.size());
}

void
RollbackMatrix::print(std::ostream &os) const
{
    util::TextTable table;
    std::vector<std::string> header = {"app \\ core"};
    for (const auto &name : coreNames)
        header.push_back(name);
    header.push_back("avg");
    table.setHeader(header);
    for (std::size_t a = 0; a < appNames.size(); ++a) {
        std::vector<std::string> row = {appNames[a]};
        for (std::size_t c = 0; c < coreNames.size(); ++c)
            row.push_back(util::fmtFixed(meanRollback[a][c], 2));
        row.push_back(util::fmtFixed(appMean(a), 2));
        table.addRow(row);
    }
    table.print(os);
}

} // namespace atmsim::core
