#include "core/undervolt.h"

#include "util/logging.h"

namespace atmsim::core {

double
UndervoltResult::savingFrac() const
{
    if (overclockPowerW <= 0.0)
        return 0.0;
    return (overclockPowerW - undervoltPowerW) / overclockPowerW;
}

UndervoltController::UndervoltController(chip::Chip *target,
                                         double target_mhz,
                                         double vdd_floor_v)
    : chip_(target), targetMhz_(target_mhz), vddFloorV_(vdd_floor_v)
{
    if (!target)
        util::panic("UndervoltController constructed with null chip");
    if (target_mhz <= 0.0)
        util::fatal("frequency target must be positive, got ", target_mhz);
    originalSetpointV_ = chip_->pdn().vrm().setpointV().value();
    if (vdd_floor_v >= originalSetpointV_)
        util::fatal("V_dd floor ", vdd_floor_v,
                    " V at or above the current setpoint");
}

double
UndervoltController::slowestAt(double setpoint_v) const
{
    chip_->pdn().vrm().setSetpointV(util::Volts{setpoint_v});
    return chip_->solveSteadyState().minActiveFreqMhz().value();
}

UndervoltResult
UndervoltController::solve()
{
    UndervoltResult result;
    chip_->pdn().vrm().setSetpointV(util::Volts{originalSetpointV_});
    const chip::ChipSteadyState overclock = chip_->solveSteadyState();
    result.overclockPowerW = overclock.chipPowerW.value();

    if (overclock.minActiveFreqMhz().value() < targetMhz_) {
        // The chip cannot meet the target even at full voltage: the
        // worst core limits undervolting to nothing (Sec. II).
        util::warn("undervolt target ", targetMhz_,
                   " MHz unreachable; keeping full V_dd");
        result.vrmSetpointV = originalSetpointV_;
        result.undervoltPowerW = overclock.chipPowerW.value();
        result.slowestCoreMhz = overclock.minActiveFreqMhz().value();
        result.steady = overclock;
        return result;
    }

    // Bisect the setpoint: slowest-core frequency is monotone in V.
    double lo = vddFloorV_;
    double hi = originalSetpointV_;
    if (slowestAt(lo) >= targetMhz_) {
        hi = lo; // even the floor meets the target
    } else {
        for (int iter = 0; iter < 40 && hi - lo > 1e-5; ++iter) {
            const double mid = 0.5 * (lo + hi);
            if (slowestAt(mid) >= targetMhz_)
                hi = mid;
            else
                lo = mid;
        }
    }

    chip_->pdn().vrm().setSetpointV(util::Volts{hi});
    result.steady = chip_->solveSteadyState();
    result.vrmSetpointV = hi;
    result.undervoltPowerW = result.steady.chipPowerW.value();
    result.slowestCoreMhz = result.steady.minActiveFreqMhz().value();
    return result;
}

void
UndervoltController::restore()
{
    chip_->pdn().vrm().setSetpointV(util::Volts{originalSetpointV_});
}

} // namespace atmsim::core
