/**
 * @file
 * Characterization results: per-core ATM fine-tuning limits under the
 * paper's four scenarios (Table I) plus the run-to-run distributions
 * of Figs. 7-9.
 */

#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/stats.h"

namespace atmsim::core {

/** Limits of one core, in CPM delay-reduction steps from the preset. */
struct CoreLimits
{
    std::string coreName;

    int idle = 0;   ///< System-idle limit (Sec. IV).
    int ubench = 0; ///< uBench limit (Sec. V).
    int normal = 0; ///< Thread-normal: supports light/medium apps.
    int worst = 0;  ///< Thread-worst: most conservative app limit.

    /** Distribution of per-run max-safe configs under idle. */
    util::IntHistogram idleDist;

    /** Distribution of per-run max-safe configs under uBench. */
    util::IntHistogram ubenchDist;

    /** ATM frequency at the idle limit, idle conditions (MHz). */
    double idleLimitFreqMhz = 0.0;

    /** ATM frequency at the thread-worst limit, idle conditions. */
    double worstLimitFreqMhz = 0.0;

    /**
     * Robustness (Sec. VI): immunity to CPM rollback from the uBench
     * limit; smaller spread means the core tolerates any application.
     */
    [[nodiscard]] int rollbackSpread() const { return ubench - worst; }
};

/** Characterization results for a whole chip. */
struct LimitTable
{
    std::string chipName;
    std::vector<CoreLimits> cores;

    [[nodiscard]] const CoreLimits &byIndex(int core) const;
    [[nodiscard]] const CoreLimits &byName(const std::string &name) const;

    /** Render in the layout of the paper's Table I. */
    void print(std::ostream &os) const;

    /**
     * Serialize to CSV (one row per core: name, the four limits, the
     * two limit frequencies). Distributions are not serialized.
     */
    void toCsv(std::ostream &os) const;

    /**
     * Parse a table previously written by toCsv(); fatal() on
     * malformed input.
     */
    [[nodiscard]] static LimitTable fromCsv(std::istream &is);
};

/**
 * Mean CPM rollback (from the uBench limit) for every <app, core>
 * pair: the data behind the Fig. 10 heatmap.
 */
struct RollbackMatrix
{
    std::vector<std::string> appNames;   ///< rows
    std::vector<std::string> coreNames;  ///< columns
    std::vector<std::vector<double>> meanRollback; ///< [app][core]

    /** Mean rollback of an app across all cores (row average). */
    [[nodiscard]] double appMean(std::size_t app) const;

    /** Mean rollback on a core across all apps (column average). */
    [[nodiscard]] double coreMean(std::size_t core) const;

    /** Render as a text heatmap table. */
    void print(std::ostream &os) const;
};

} // namespace atmsim::core
