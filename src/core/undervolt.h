/**
 * @file
 * Off-chip voltage control: the third component of the ATM system
 * (Fig. 3 of the paper). Instead of converting reclaimed margin into
 * frequency (overclocking, the configuration the paper studies), the
 * off-chip controller can convert it into power savings: it reads the
 * slowest core's average frequency and lowers the chip-wide V_dd
 * until the chip just sustains a user-specified frequency target.
 *
 * The paper disables this path ("we convert all of ATM's reclaimed
 * timing margin into frequency"); we implement it as well, both for
 * completeness and because it quantifies the frequency-vs-power
 * trade-off that motivates fine-tuning in the first place. The
 * undervolting depth is limited by the chip's worst core -- exactly
 * the restriction the paper's Sec. II calls out.
 */

#pragma once

#include "chip/chip.h"

namespace atmsim::core {

/** Outcome of an undervolting solve. */
struct UndervoltResult
{
    /** Final VRM setpoint (V). */
    double vrmSetpointV = 0.0;

    /** Chip power in overclocking mode (W), same assignments. */
    double overclockPowerW = 0.0;

    /** Chip power after undervolting (W). */
    double undervoltPowerW = 0.0;

    /** Slowest active core's frequency after undervolting (MHz). */
    double slowestCoreMhz = 0.0;

    /** Steady state at the undervolted operating point. */
    chip::ChipSteadyState steady;

    /** Fractional power saving. */
    [[nodiscard]] double savingFrac() const;
};

/**
 * The off-chip voltage controller, analytic form: finds the lowest
 * V_dd at which the slowest active core's ATM steady-state frequency
 * still meets the target. (On hardware this is a 32 ms sliding-window
 * loop; between di/dt events the window average equals the steady
 * state, so the analytic solve is its fixed point.)
 */
class UndervoltController
{
  public:
    /**
     * @param target Chip to control (not owned). The chip's CPM
     *        reductions and workload assignments define the operating
     *        scenario.
     * @param target_mhz Frequency target the slowest core must keep.
     * @param vdd_floor_v Lowest electrically-safe setpoint.
     */
    UndervoltController(chip::Chip *target, double target_mhz,
                        double vdd_floor_v = 1.05);

    /**
     * Solve for the undervolted operating point. Leaves the chip's
     * VRM at the solved setpoint (call restore() to undo).
     */
    UndervoltResult solve();

    /** Restore the original VRM setpoint. */
    void restore();

    [[nodiscard]] double targetMhz() const { return targetMhz_; }

  private:
    /** Slowest active core frequency at a given setpoint. */
    [[nodiscard]] double slowestAt(double setpoint_v) const;

    chip::Chip *chip_;
    double targetMhz_;
    double vddFloorV_;
    double originalSetpointV_;
};

} // namespace atmsim::core
