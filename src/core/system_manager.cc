#include "core/system_manager.h"

#include <algorithm>

#include "chip/pstate.h"
#include "core/characterizer.h"
#include "util/logging.h"

namespace atmsim::core {

bool
SystemScheduleResult::allQosMet() const
{
    return std::all_of(placements.begin(), placements.end(),
                       [](const JobPlacement &p) { return p.qosMet; });
}

SystemManager::SystemManager(chip::System *server) : server_(server)
{
    if (!server)
        util::panic("SystemManager constructed with null server");
    for (int p = 0; p < server->chipCount(); ++p) {
        chip::Chip &chip = server->chip(p);
        Characterizer characterizer(&chip);
        tables_.push_back(characterizer.characterizeChip());
        // The manager's construction deploys the fine-tuned
        // (thread-worst) configuration and fits Eq. 1 on it.
        managers_.push_back(
            std::make_unique<AtmManager>(&chip, tables_.back()));
    }
}

AtmManager &
SystemManager::managerFor(int chip)
{
    if (chip < 0 || chip >= chipCount())
        util::fatal("system manager: chip ", chip, " out of range");
    return *managers_[static_cast<std::size_t>(chip)];
}

double
SystemManager::deployedFreqMhz(int chip, int core) const
{
    if (chip < 0 || chip >= chipCount())
        util::fatal("system manager: chip ", chip, " out of range");
    const LimitTable &table = tables_[static_cast<std::size_t>(chip)];
    return server_->chip(chip)
        .core(core)
        .silicon()
        .atmFrequencyMhz(util::CpmSteps{table.byIndex(core).worst}, 1.0)
        .value();
}

SystemScheduleResult
SystemManager::scheduleBatch(const std::vector<CriticalJob> &jobs,
                             const workload::WorkloadTraits *background)
{
    const int total_cores = server_->totalCores();
    if (static_cast<int>(jobs.size()) > total_cores) {
        util::fatal("batch of ", jobs.size(), " jobs exceeds ",
                    total_cores, " cores");
    }
    for (const CriticalJob &job : jobs) {
        if (!job.app)
            util::fatal("batch contains a null critical app");
    }

    // Rank free cores server-wide by deployed speed.
    struct Slot
    {
        double freq;
        int chip;
        int core;
    };
    std::vector<Slot> slots;
    for (int p = 0; p < chipCount(); ++p) {
        for (int c = 0; c < server_->chip(p).coreCount(); ++c)
            slots.push_back({deployedFreqMhz(p, c), p, c});
    }
    std::sort(slots.begin(), slots.end(),
              [](const Slot &a, const Slot &b) { return a.freq > b.freq; });

    // Hardest jobs (highest required frequency) pick first.
    std::vector<std::size_t> order(jobs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::vector<double> required(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // Use the owning manager's predictor cache lazily below; the
        // required frequency is manager-independent (app property).
        required[i] = managers_.front()
                          ->perfPredictor(*jobs[i].app)
                          .requiredFreqMhz(jobs[i].qosTarget);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return required[a] > required[b];
              });

    SystemScheduleResult result;
    result.placements.resize(jobs.size());
    for (int p = 0; p < chipCount(); ++p)
        server_->chip(p).clearAssignments();

    std::size_t slot_index = 0;
    for (std::size_t job_rank = 0; job_rank < order.size(); ++job_rank) {
        const std::size_t j = order[job_rank];
        const Slot &slot = slots[slot_index++];
        server_->chip(slot.chip).assignWorkload(slot.core, jobs[j].app);
        result.placements[j].chip = slot.chip;
        result.placements[j].core = slot.core;
        result.placements[j].predictedFreqMhz = slot.freq;
    }

    // Fill the remaining cores with background work.
    if (background) {
        for (; slot_index < slots.size(); ++slot_index) {
            const Slot &slot = slots[slot_index];
            server_->chip(slot.chip).assignWorkload(slot.core,
                                                    background);
        }
    }

    // Per-chip throttling: while any resident job misses its target,
    // step the hungriest background core on that chip down a p-state.
    for (int p = 0; p < chipCount(); ++p) {
        chip::Chip &chip = server_->chip(p);
        for (int iter = 0; iter < 128; ++iter) {
            const chip::ChipSteadyState st = chip.solveSteadyState();
            bool all_met = true;
            for (std::size_t j = 0; j < jobs.size(); ++j) {
                const JobPlacement &placement = result.placements[j];
                if (placement.chip != p)
                    continue;
                const double f =
                    st.coreFreqMhz[static_cast<std::size_t>(
                                       placement.core)]
                        .value();
                if (jobs[j].app->perfRelative(f)
                    < jobs[j].qosTarget - 1e-9) {
                    all_met = false;
                }
            }
            if (all_met)
                break;
            // Throttle the hungriest non-critical core on this chip.
            int victim = -1;
            double victim_power = 0.0;
            for (int c = 0; c < chip.coreCount(); ++c) {
                bool is_critical = false;
                for (const JobPlacement &placement : result.placements) {
                    if (placement.chip == p && placement.core == c)
                        is_critical = true;
                }
                if (is_critical || chip.assignment(c).idle())
                    continue;
                const chip::AtmCore &bg = chip.core(c);
                if (bg.mode() == chip::CoreMode::Gated)
                    continue;
                const bool at_floor =
                    bg.mode() == chip::CoreMode::FixedFrequency
                    && bg.fixedFrequencyMhz()
                           <= chip::lowestPStateMhz() + util::Mhz{1e-9};
                if (at_floor)
                    continue;
                const double power =
                    st.corePowerW[static_cast<std::size_t>(c)].value();
                if (power > victim_power) {
                    victim_power = power;
                    victim = c;
                }
            }
            if (victim < 0) {
                // Everything is at the p-state floor: gate the
                // hungriest background core as the last resort.
                int gate = -1;
                double gate_power = 0.0;
                for (int c = 0; c < chip.coreCount(); ++c) {
                    bool is_critical = false;
                    for (const JobPlacement &placement :
                         result.placements) {
                        if (placement.chip == p && placement.core == c)
                            is_critical = true;
                    }
                    if (is_critical || chip.assignment(c).idle())
                        continue;
                    if (chip.core(c).mode() == chip::CoreMode::Gated)
                        continue;
                    const double power =
                        st.corePowerW[static_cast<std::size_t>(c)]
                            .value();
                    if (power > gate_power) {
                        gate_power = power;
                        gate = c;
                    }
                }
                if (gate < 0)
                    break; // nothing left to shed
                chip.core(gate).setMode(chip::CoreMode::Gated);
                continue;
            }
            chip::AtmCore &bg = chip.core(victim);
            if (bg.mode() == chip::CoreMode::AtmOverclock) {
                bg.setMode(chip::CoreMode::FixedFrequency);
                bg.setFixedFrequencyMhz(chip::highestPStateMhz());
            } else {
                bg.setFixedFrequencyMhz(chip::pstateAtOrBelowMhz(
                    bg.fixedFrequencyMhz() - util::Mhz{1.0}));
            }
        }
        result.chipStates.push_back(chip.solveSteadyState());
    }

    // Final outcome per job.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        JobPlacement &placement = result.placements[j];
        const chip::ChipSteadyState &st =
            result.chipStates[static_cast<std::size_t>(placement.chip)];
        const double f =
            st.coreFreqMhz[static_cast<std::size_t>(placement.core)]
                .value();
        placement.achievedPerf = jobs[j].app->perfRelative(f);
        placement.qosMet =
            placement.achievedPerf >= jobs[j].qosTarget - 1e-9;
    }
    return result;
}

} // namespace atmsim::core
