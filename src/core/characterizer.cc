#include "core/characterizer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "sim/sim_engine.h"
#include "util/logging.h"
#include "variation/calibration.h"
#include "workload/catalog.h"

namespace atmsim::core {

using util::CpmSteps;
using util::Picoseconds;

int
LimitDistribution::limit() const
{
    if (maxSafe.empty())
        util::fatal("limit() on an empty distribution");
    return static_cast<int>(maxSafe.minValue());
}

void
Characterizer::setObservability(const obs::Observability &sinks)
{
    obs_ = sinks;
    traceTrack_ =
        obs_.trace ? obs_.trace->track("characterizer") : -1;
}

Characterizer::Characterizer(chip::Chip *target,
                             const CharacterizerConfig &config)
    : chip_(target), config_(config)
{
    if (!target)
        util::panic("Characterizer constructed with null chip");
    if (config_.reps < 1)
        util::fatal("characterizer needs at least 1 repetition");
    if (config_.reps < 8)
        util::warn("fewer than 8 repetitions does not cover the full "
                   "run-noise range; limits may be optimistic");
}

bool
Characterizer::trialSafe(int core, int reduction,
                         const workload::WorkloadTraits &traits, int rep)
{
    const variation::CoreSiliconParams &silicon =
        chip_->core(core).silicon();
    const double noise = variation::runNoisePs(silicon, rep);
    if (obs_.metrics)
        obs_.metrics->counter("characterizer.trials").inc();

    if (config_.mode == CharacterizerConfig::Mode::Analytic) {
        const double extra = variation::scenarioExtraPs(
            silicon,
            chip::Chip::pathExposurePs(silicon, traits).value(),
            traits.droopMv);
        const bool safe =
            variation::analyticSafe(silicon, CpmSteps{reduction},
                                    Picoseconds{extra},
                                    Picoseconds{noise});
        if (!safe && obs_.metrics)
            obs_.metrics->counter("characterizer.trials.unsafe").inc();
        return safe;
    }

    // Engine mode: place the workload on the core under test (the
    // virus loads every core, per the test-time procedure), program
    // the reduction, and race the control loop for a window.
    chip_->clearAssignments();
    const bool chip_wide =
        traits.stress == workload::StressClass::Virus;
    for (int c = 0; c < chip_->coreCount(); ++c) {
        chip_->core(c).setMode(chip::CoreMode::AtmOverclock);
        chip_->core(c).setCpmReduction(CpmSteps{0});
        if (chip_wide || c == core)
            chip_->assignWorkload(c, &traits);
    }
    chip_->core(core).setCpmReduction(CpmSteps{reduction});

    sim::SimConfig sim_config;
    sim_config.runNoisePs = noise;
    sim_config.seed = config_.seed
                    ^ (static_cast<std::uint64_t>(core) << 32)
                    ^ (static_cast<std::uint64_t>(reduction) << 16)
                    ^ static_cast<std::uint64_t>(rep);
    sim::SimEngine engine(chip_, sim_config);
    engine.setObservability(obs_);
    if (obs_.metrics)
        obs_.metrics->counter("characterizer.trials.engine").inc();
    const sim::RunResult result = engine.run(config_.engineWindowUs);

    // Restore a neutral state.
    chip_->clearAssignments();
    chip_->core(core).setCpmReduction(CpmSteps{0});

    for (const auto &ev : result.violations) {
        if (ev.core == core) {
            if (obs_.metrics) {
                obs_.metrics->counter("characterizer.trials.unsafe")
                    .inc();
            }
            return false;
        }
    }
    return true;
}

template <typename T, typename Fn>
std::vector<T>
Characterizer::shardedMap(std::size_t count, Fn &&fn)
{
    // Engine-mode trials mutate chip state (assignments, reductions,
    // clocks), so each task gets a private clone; trials are
    // history-free, so a clone answers exactly like the shared chip.
    // Analytic trials only read silicon and share the chip.
    const bool clone_chip =
        config_.mode == CharacterizerConfig::Mode::Engine;
    const bool shard_metrics = obs_.metrics != nullptr;
    std::vector<std::unique_ptr<obs::MetricsRegistry>> shards(
        shard_metrics ? count : 0);

    std::vector<T> out(count);
    exec::parallelFor(
        count,
        [&](std::size_t i) {
            Characterizer task = *this;
            // Traces stay on the caller's thread: event order inside
            // a parallel region would depend on scheduling.
            task.obs_.trace = nullptr;
            task.traceTrack_ = -1;
            std::unique_ptr<chip::Chip> local;
            if (clone_chip) {
                local = std::make_unique<chip::Chip>(
                    chip_->silicon(), chip_->config());
                task.chip_ = local.get();
            }
            if (shard_metrics) {
                shards[i] = std::make_unique<obs::MetricsRegistry>();
                task.obs_.metrics = shards[i].get();
            }
            out[i] = fn(task, i);
        },
        config_.jobs);

    // Merge the metric shards in task-index order; double-valued
    // sums therefore group the same way at every job count.
    if (shard_metrics) {
        for (const auto &shard : shards)
            obs_.metrics->mergeFrom(*shard);
    }
    return out;
}

int
Characterizer::maxSafeScan(int core, const workload::WorkloadTraits &traits,
                           int rep, int start, int ceiling)
{
    // Find the largest safe reduction for this repeat. The search
    // either starts at 0 (idle characterization) or at the previous
    // scenario's limit and rolls back on failure (Sec. V-B).
    if (!trialSafe(core, start, traits, rep)) {
        int k = start;
        while (k > 0 && !trialSafe(core, k, traits, rep))
            --k;
        return k;
    }
    int k = start;
    while (k < ceiling && trialSafe(core, k + 1, traits, rep))
        ++k;
    return k;
}

LimitDistribution
Characterizer::idleLimit(int core)
{
    const workload::WorkloadTraits &idle = workload::idleWorkload();
    const int ceiling = chip_->core(core).silicon().presetSteps;
    // Repeats are independent (the scan inside one repeat is not):
    // fan out one task per rep and fold the outcomes in rep order.
    const std::vector<int> safe = shardedMap<int>(
        static_cast<std::size_t>(config_.reps),
        [&](Characterizer &task, std::size_t rep) {
            return task.maxSafeScan(core, idle, static_cast<int>(rep),
                                    0, ceiling);
        });
    LimitDistribution dist;
    for (int s : safe)
        dist.maxSafe.add(s);
    return dist;
}

LimitDistribution
Characterizer::ubenchLimit(int core, int idle_limit)
{
    // One task per (program, rep) cell of the uBench sweep. Rolls
    // back from the idle limit; uBench never explores above it (the
    // procedure only retreats under stress).
    const auto progs = workload::ubenchPrograms();
    const auto reps = static_cast<std::size_t>(config_.reps);
    const std::vector<int> safe = shardedMap<int>(
        progs.size() * reps,
        [&](Characterizer &task, std::size_t i) {
            const workload::WorkloadTraits &prog = *progs[i / reps];
            const int rep = static_cast<int>(i % reps);
            return task.maxSafeScan(core, prog, rep, idle_limit,
                                    idle_limit);
        });
    LimitDistribution dist;
    for (int s : safe)
        dist.maxSafe.add(s);
    return dist;
}

LimitDistribution
Characterizer::appLimit(int core, int ubench_limit,
                        const workload::WorkloadTraits &app)
{
    const std::vector<int> safe = shardedMap<int>(
        static_cast<std::size_t>(config_.reps),
        [&](Characterizer &task, std::size_t rep) {
            return task.maxSafeScan(core, app, static_cast<int>(rep),
                                    ubench_limit, ubench_limit);
        });
    LimitDistribution dist;
    for (int s : safe)
        dist.maxSafe.add(s);
    return dist;
}

double
Characterizer::meanRollback(int core, int ubench_limit,
                            const workload::WorkloadTraits &app)
{
    const std::vector<int> safe = shardedMap<int>(
        static_cast<std::size_t>(config_.reps),
        [&](Characterizer &task, std::size_t rep) {
            return task.maxSafeScan(core, app, static_cast<int>(rep),
                                    ubench_limit, ubench_limit);
        });
    // Fold in rep order: the double sum groups exactly like the old
    // sequential accumulation.
    double total = 0.0;
    for (int s : safe)
        total += static_cast<double>(ubench_limit - s);
    return total / static_cast<double>(config_.reps);
}

CoreLimits
Characterizer::characterizeCore(int core)
{
    obs::ScopedSpan span(obs_.trace, "characterize.core", traceTrack_);
    if (obs_.metrics)
        obs_.metrics->counter("characterizer.cores").inc();
    CoreLimits limits;
    const variation::CoreSiliconParams &silicon =
        chip_->core(core).silicon();
    limits.coreName = silicon.name;

    LimitDistribution idle = idleLimit(core);
    limits.idle = idle.limit();
    limits.idleDist = idle.maxSafe;

    LimitDistribution ubench = ubenchLimit(core, limits.idle);
    limits.ubench = ubench.limit();
    limits.ubenchDist = ubench.maxSafe;

    int normal = limits.ubench;
    int worst = limits.ubench;
    for (const workload::WorkloadTraits *app : workload::profiledApps()) {
        const int app_limit =
            appLimit(core, limits.ubench, *app).limit();
        worst = std::min(worst, app_limit);
        if (app->stress == workload::StressClass::Light
            || app->stress == workload::StressClass::Medium) {
            normal = std::min(normal, app_limit);
        }
    }
    limits.normal = normal;
    limits.worst = worst;

    limits.idleLimitFreqMhz =
        silicon.atmFrequencyMhz(CpmSteps{limits.idle}, 1.0).value();
    limits.worstLimitFreqMhz =
        silicon.atmFrequencyMhz(CpmSteps{limits.worst}, 1.0).value();
    return limits;
}

LimitTable
Characterizer::characterizeChip()
{
    obs::ScopedSpan span(obs_.trace, "characterize.chip", traceTrack_);
    LimitTable table;
    table.chipName = chip_->name();
    // Cores are fully independent: one task per core, results placed
    // in core order. Nested sweeps inside characterizeCore run
    // inline on the task's thread (see exec::insideParallelTask).
    table.cores = shardedMap<CoreLimits>(
        static_cast<std::size_t>(chip_->coreCount()),
        [](Characterizer &task, std::size_t c) {
            return task.characterizeCore(static_cast<int>(c));
        });
    return table;
}

RollbackMatrix
Characterizer::rollbackMatrix(const LimitTable &table)
{
    RollbackMatrix matrix;
    const auto apps = workload::profiledApps();
    for (const auto *app : apps)
        matrix.appNames.push_back(app->name);
    for (const auto &core : table.cores)
        matrix.coreNames.push_back(core.coreName);

    // One task per (app, core) cell of the Fig. 10 grid.
    const std::size_t n_cores = table.cores.size();
    const std::vector<double> cells = shardedMap<double>(
        apps.size() * n_cores,
        [&](Characterizer &task, std::size_t i) {
            const std::size_t a = i / n_cores;
            const std::size_t c = i % n_cores;
            return task.meanRollback(static_cast<int>(c),
                                     table.cores[c].ubench, *apps[a]);
        });
    matrix.meanRollback.resize(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        auto &row = matrix.meanRollback[a];
        row.assign(cells.begin()
                       + static_cast<std::ptrdiff_t>(a * n_cores),
                   cells.begin()
                       + static_cast<std::ptrdiff_t>((a + 1) * n_cores));
    }
    return matrix;
}

} // namespace atmsim::core
