#include "core/characterizer.h"

#include <algorithm>

#include "sim/sim_engine.h"
#include "util/logging.h"
#include "variation/calibration.h"
#include "workload/catalog.h"

namespace atmsim::core {

using util::CpmSteps;
using util::Picoseconds;

int
LimitDistribution::limit() const
{
    if (maxSafe.empty())
        util::fatal("limit() on an empty distribution");
    return static_cast<int>(maxSafe.minValue());
}

void
Characterizer::setObservability(const obs::Observability &sinks)
{
    obs_ = sinks;
    traceTrack_ =
        obs_.trace ? obs_.trace->track("characterizer") : -1;
}

Characterizer::Characterizer(chip::Chip *target,
                             const CharacterizerConfig &config)
    : chip_(target), config_(config)
{
    if (!target)
        util::panic("Characterizer constructed with null chip");
    if (config_.reps < 1)
        util::fatal("characterizer needs at least 1 repetition");
    if (config_.reps < 8)
        util::warn("fewer than 8 repetitions does not cover the full "
                   "run-noise range; limits may be optimistic");
}

bool
Characterizer::trialSafe(int core, int reduction,
                         const workload::WorkloadTraits &traits, int rep)
{
    const variation::CoreSiliconParams &silicon =
        chip_->core(core).silicon();
    const double noise = variation::runNoisePs(silicon, rep);
    if (obs_.metrics)
        obs_.metrics->counter("characterizer.trials").inc();

    if (config_.mode == CharacterizerConfig::Mode::Analytic) {
        const double extra = variation::scenarioExtraPs(
            silicon,
            chip::Chip::pathExposurePs(silicon, traits).value(),
            traits.droopMv);
        const bool safe =
            variation::analyticSafe(silicon, CpmSteps{reduction},
                                    Picoseconds{extra},
                                    Picoseconds{noise});
        if (!safe && obs_.metrics)
            obs_.metrics->counter("characterizer.trials.unsafe").inc();
        return safe;
    }

    // Engine mode: place the workload on the core under test (the
    // virus loads every core, per the test-time procedure), program
    // the reduction, and race the control loop for a window.
    chip_->clearAssignments();
    const bool chip_wide =
        traits.stress == workload::StressClass::Virus;
    for (int c = 0; c < chip_->coreCount(); ++c) {
        chip_->core(c).setMode(chip::CoreMode::AtmOverclock);
        chip_->core(c).setCpmReduction(CpmSteps{0});
        if (chip_wide || c == core)
            chip_->assignWorkload(c, &traits);
    }
    chip_->core(core).setCpmReduction(CpmSteps{reduction});

    sim::SimConfig sim_config;
    sim_config.runNoisePs = noise;
    sim_config.seed = config_.seed
                    ^ (static_cast<std::uint64_t>(core) << 32)
                    ^ (static_cast<std::uint64_t>(reduction) << 16)
                    ^ static_cast<std::uint64_t>(rep);
    sim::SimEngine engine(chip_, sim_config);
    engine.setObservability(obs_);
    if (obs_.metrics)
        obs_.metrics->counter("characterizer.trials.engine").inc();
    const sim::RunResult result = engine.run(config_.engineWindowUs);

    // Restore a neutral state.
    chip_->clearAssignments();
    chip_->core(core).setCpmReduction(CpmSteps{0});

    for (const auto &ev : result.violations) {
        if (ev.core == core) {
            if (obs_.metrics) {
                obs_.metrics->counter("characterizer.trials.unsafe")
                    .inc();
            }
            return false;
        }
    }
    return true;
}

int
Characterizer::maxSafeScan(int core, const workload::WorkloadTraits &traits,
                           int rep, int start, int ceiling)
{
    // Find the largest safe reduction for this repeat. The search
    // either starts at 0 (idle characterization) or at the previous
    // scenario's limit and rolls back on failure (Sec. V-B).
    if (!trialSafe(core, start, traits, rep)) {
        int k = start;
        while (k > 0 && !trialSafe(core, k, traits, rep))
            --k;
        return k;
    }
    int k = start;
    while (k < ceiling && trialSafe(core, k + 1, traits, rep))
        ++k;
    return k;
}

LimitDistribution
Characterizer::idleLimit(int core)
{
    const workload::WorkloadTraits &idle = workload::idleWorkload();
    const int ceiling = chip_->core(core).silicon().presetSteps;
    LimitDistribution dist;
    for (int rep = 0; rep < config_.reps; ++rep)
        dist.maxSafe.add(maxSafeScan(core, idle, rep, 0, ceiling));
    return dist;
}

LimitDistribution
Characterizer::ubenchLimit(int core, int idle_limit)
{
    LimitDistribution dist;
    for (const workload::WorkloadTraits *prog :
         workload::ubenchPrograms()) {
        for (int rep = 0; rep < config_.reps; ++rep) {
            // Roll back from the idle limit; uBench never explores
            // above it (the procedure only retreats under stress).
            dist.maxSafe.add(maxSafeScan(core, *prog, rep, idle_limit,
                                         idle_limit));
        }
    }
    return dist;
}

LimitDistribution
Characterizer::appLimit(int core, int ubench_limit,
                        const workload::WorkloadTraits &app)
{
    LimitDistribution dist;
    for (int rep = 0; rep < config_.reps; ++rep) {
        dist.maxSafe.add(maxSafeScan(core, app, rep, ubench_limit,
                                     ubench_limit));
    }
    return dist;
}

double
Characterizer::meanRollback(int core, int ubench_limit,
                            const workload::WorkloadTraits &app)
{
    double total = 0.0;
    for (int rep = 0; rep < config_.reps; ++rep) {
        const int safe = maxSafeScan(core, app, rep, ubench_limit,
                                     ubench_limit);
        total += static_cast<double>(ubench_limit - safe);
    }
    return total / static_cast<double>(config_.reps);
}

CoreLimits
Characterizer::characterizeCore(int core)
{
    obs::ScopedSpan span(obs_.trace, "characterize.core", traceTrack_);
    if (obs_.metrics)
        obs_.metrics->counter("characterizer.cores").inc();
    CoreLimits limits;
    const variation::CoreSiliconParams &silicon =
        chip_->core(core).silicon();
    limits.coreName = silicon.name;

    LimitDistribution idle = idleLimit(core);
    limits.idle = idle.limit();
    limits.idleDist = idle.maxSafe;

    LimitDistribution ubench = ubenchLimit(core, limits.idle);
    limits.ubench = ubench.limit();
    limits.ubenchDist = ubench.maxSafe;

    int normal = limits.ubench;
    int worst = limits.ubench;
    for (const workload::WorkloadTraits *app : workload::profiledApps()) {
        const int app_limit =
            appLimit(core, limits.ubench, *app).limit();
        worst = std::min(worst, app_limit);
        if (app->stress == workload::StressClass::Light
            || app->stress == workload::StressClass::Medium) {
            normal = std::min(normal, app_limit);
        }
    }
    limits.normal = normal;
    limits.worst = worst;

    limits.idleLimitFreqMhz =
        silicon.atmFrequencyMhz(CpmSteps{limits.idle}, 1.0).value();
    limits.worstLimitFreqMhz =
        silicon.atmFrequencyMhz(CpmSteps{limits.worst}, 1.0).value();
    return limits;
}

LimitTable
Characterizer::characterizeChip()
{
    LimitTable table;
    table.chipName = chip_->name();
    for (int c = 0; c < chip_->coreCount(); ++c)
        table.cores.push_back(characterizeCore(c));
    return table;
}

RollbackMatrix
Characterizer::rollbackMatrix(const LimitTable &table)
{
    RollbackMatrix matrix;
    const auto apps = workload::profiledApps();
    for (const auto *app : apps)
        matrix.appNames.push_back(app->name);
    for (const auto &core : table.cores)
        matrix.coreNames.push_back(core.coreName);

    matrix.meanRollback.resize(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        auto &row = matrix.meanRollback[a];
        row.resize(table.cores.size(), 0.0);
        for (std::size_t c = 0; c < table.cores.size(); ++c) {
            row[c] = meanRollback(static_cast<int>(c),
                                  table.cores[c].ubench, *apps[a]);
        }
    }
    return matrix;
}

} // namespace atmsim::core
