/**
 * @file
 * The systematic ATM characterization procedure of Sec. III-B /
 * Fig. 6: per core, from the simplest scenario to the most complex --
 * system idle, then uBench (coremark, daxpy, stream), then realistic
 * single-threaded workloads -- with repeated runs per configuration to
 * build distributions of the most aggressive safe CPM setting.
 *
 * Two execution modes:
 *  - Analytic: closed-form safety decision (fast; used by the
 *    benchmark harnesses and the management layer), and
 *  - Engine: full time-stepped simulation with di/dt events racing
 *    the DPLL (slow; validates the analytic mode).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chip/chip.h"
#include "core/limit_table.h"
#include "obs/phase.h"
#include "workload/workload.h"

namespace atmsim::core {

/** Characterization settings. */
struct CharacterizerConfig
{
    /** Execution mode. */
    enum class Mode { Analytic, Engine };
    Mode mode = Mode::Analytic;

    /**
     * Repeated runs per configuration. Eight stratified repeats cover
     * the whole run-noise range (see variation::runNoisePs).
     */
    int reps = 8;

    /** Engine-mode run window per trial (us). */
    double engineWindowUs = 6.0;

    /** Engine-mode random seed base. */
    std::uint64_t seed = 2024;

    /**
     * Parallelism for the rep/core/cell sweeps (0 = the process
     * default, 1 = inline). Any value produces bitwise-identical
     * tables and metric snapshots: every trial's seed and noise are
     * derived from (core, reduction, rep) alone, results fold in
     * index order, and engine-mode tasks run on private chip clones
     * (trials are history-free, so a clone answers exactly like the
     * shared chip).
     */
    int jobs = 0;
};

/** Distribution of per-run max-safe configurations for one scenario. */
struct LimitDistribution
{
    util::IntHistogram maxSafe;

    /** The scenario limit: the most conservative run's outcome. */
    [[nodiscard]] int limit() const;
};

/** Runs the Fig. 6 characterization methodology on one chip. */
class Characterizer
{
  public:
    /**
     * @param target Chip to characterize (not owned). Engine mode
     *        mutates its assignments and CPM settings during trials
     *        and restores reduction 0 / idle assignments afterwards.
     * @param config Settings.
     */
    Characterizer(chip::Chip *target, const CharacterizerConfig &config = {});

    /**
     * Single trial: is this CPM delay reduction safe for this
     * workload on this core in repetition rep?
     */
    bool trialSafe(int core, int reduction,
                   const workload::WorkloadTraits &traits, int rep);

    /** Step 1: idle-limit distribution (Fig. 7). */
    LimitDistribution idleLimit(int core);

    /**
     * Step 2: uBench limit, starting from the idle limit and rolling
     * back on failure (Fig. 8). The limit is the most conservative
     * outcome across the three uBench programs and all repeats.
     */
    LimitDistribution ubenchLimit(int core, int idle_limit);

    /**
     * Step 3: per-application limit, starting from the uBench limit
     * (Fig. 9).
     */
    LimitDistribution appLimit(int core, int ubench_limit,
                               const workload::WorkloadTraits &app);

    /**
     * Mean CPM rollback from the uBench limit for an app on a core
     * (one cell of Fig. 10).
     */
    double meanRollback(int core, int ubench_limit,
                        const workload::WorkloadTraits &app);

    /** Full characterization of one core (one Table I column). */
    CoreLimits characterizeCore(int core);

    /** Full characterization of the chip (Table I). */
    LimitTable characterizeChip();

    /** Fig. 10: rollback matrix over the profiled apps. */
    RollbackMatrix rollbackMatrix(const LimitTable &table);

    [[nodiscard]] const CharacterizerConfig &config() const { return config_; }

    /**
     * Attach observability backends (none owned): trials tick
     * `characterizer.*` counters, per-core characterization runs
     * become trace spans, and engine-mode trials propagate the bundle
     * into the spawned SimEngine.
     */
    void setObservability(const obs::Observability &sinks);

  private:
    /** Largest safe reduction for one repeat, scanning upward. */
    int maxSafeScan(int core, const workload::WorkloadTraits &traits,
                    int rep, int start, int ceiling);

    /**
     * Deterministic parallel map over `count` independent tasks:
     * out[i] = fn(task_characterizer, i), where each task runs on a
     * private chip clone (engine mode) and records metrics into a
     * private shard merged back in index order. The shard-and-merge
     * route is taken at every job count -- including 1 -- so
     * floating-point metric sums group identically regardless of
     * --jobs.
     */
    template <typename T, typename Fn>
    std::vector<T> shardedMap(std::size_t count, Fn &&fn);

    chip::Chip *chip_;
    CharacterizerConfig config_;

    obs::Observability obs_;
    int traceTrack_ = -1;
};

} // namespace atmsim::core
