/**
 * @file
 * Characterization report: a single structured summary of everything
 * the fine-tuning pipeline learned about a chip -- limits, deployed
 * frequencies, robustness, predictor coefficients -- renderable as
 * text or CSV. This is what a vendor's test floor would archive per
 * part.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "chip/chip.h"
#include "core/limit_table.h"

namespace atmsim::core {

/** Per-core entry of a characterization report. */
struct CoreReport
{
    std::string coreName;
    int presetSteps = 0;
    CoreLimits limits;
    int deployedReduction = 0;     ///< thread-worst (stress-tested)
    double deployedIdleMhz = 0.0;
    double freqSlopeMhzPerW = 0.0; ///< Eq. 1 k'
    double freqInterceptMhz = 0.0; ///< Eq. 1 b
    bool robust = false;
};

/** Whole-chip characterization report. */
struct ChipReport
{
    std::string chipName;
    std::vector<CoreReport> cores;
    double speedDifferentialMhz = 0.0;
    double stressPowerW = 0.0;
    double stressMaxTempC = 0.0;

    /** Render as a text table plus summary lines. */
    void print(std::ostream &os) const;

    /** Serialize per-core rows as CSV. */
    void toCsv(std::ostream &os) const;
};

/**
 * Produce the full report for a chip: runs characterization, the
 * stress-test deployment, and the frequency-predictor fit.
 *
 * @param target Chip to report on (assignments/settings are mutated
 *        during the runs and left in the deployed state).
 * @param robust_spread Robustness threshold (uBench-to-worst spread).
 */
[[nodiscard]]
ChipReport buildChipReport(chip::Chip *target, int robust_spread = 1);

} // namespace atmsim::core
