/**
 * @file
 * Population study: run the full fine-tuning pipeline
 * (characterize -> stress-test -> deploy) over a population of
 * randomly manufactured chips and aggregate the exposed variation.
 * This supports the paper's deployment-at-scale argument: the
 * inter-core speed differential and the supply of robust cores are
 * properties of the process, not of the two measured parts.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.h"
#include "variation/chip_generator.h"

namespace atmsim::core {

/** Configuration of a population study. */
struct PopulationConfig
{
    int chipCount = 24;
    std::uint64_t seedBase = 1000;
    variation::ChipGeneratorConfig generator;

    /** Robustness threshold (uBench-to-worst spread). */
    int robustSpread = 1;

    /**
     * Parallelism over the generated chips (0 = process default,
     * 1 = inline). Any value yields identical stats: each chip is
     * generated from seedBase + index and characterized in its own
     * task, and the tables fold into the aggregate in chip order.
     */
    int jobs = 0;
};

/** Aggregated population results. */
struct PopulationStats
{
    int chipCount = 0;

    /** Per-core idle limits (steps). */
    util::IntHistogram idleLimitSteps;

    /** Per-core idle-limit frequencies (MHz). */
    util::RunningStats idleLimitMhz;

    /** Per-core thread-worst (deployable) frequencies (MHz). */
    util::RunningStats worstLimitMhz;

    /** Per-chip deployed fastest-slowest differential (MHz). */
    util::RunningStats differentialMhz;
    std::vector<double> differentials;

    /** Per-chip robust-core count. */
    util::RunningStats robustCores;

    /** Fraction of chips with a differential of at least 200 MHz. */
    [[nodiscard]] double fracAbove200Mhz() const;
};

/**
 * Run the study.
 *
 * @param config Study parameters.
 * @return Aggregated statistics over the population.
 */
PopulationStats studyPopulation(const PopulationConfig &config = {});

} // namespace atmsim::core
