/**
 * @file
 * Population study: run the full fine-tuning pipeline
 * (characterize -> stress-test -> deploy) over a population of
 * randomly manufactured chips and aggregate the exposed variation.
 * This supports the paper's deployment-at-scale argument: the
 * inter-core speed differential and the supply of robust cores are
 * properties of the process, not of the two measured parts.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/stats.h"
#include "variation/chip_generator.h"

namespace atmsim::obs {
class MetricsRegistry;
}

namespace atmsim::util {
class JsonWriter;
class JsonValue;
}

namespace atmsim::core {

struct LimitTable;

/** Configuration of a population study. */
struct PopulationConfig
{
    int chipCount = 24;
    std::uint64_t seedBase = 1000;
    variation::ChipGeneratorConfig generator;

    /** Robustness threshold (uBench-to-worst spread). */
    int robustSpread = 1;

    /**
     * Parallelism over the generated chips (0 = process default,
     * 1 = inline). Any value yields identical stats: each chip is
     * generated from seedBase + index and characterized in its own
     * task, and the tables fold into the aggregate in chip order.
     */
    int jobs = 0;
};

/** Aggregated population results. */
struct PopulationStats
{
    int chipCount = 0;

    /** Per-core idle limits (steps). */
    util::IntHistogram idleLimitSteps;

    /** Per-core idle-limit frequencies (MHz). */
    util::RunningStats idleLimitMhz;

    /** Per-core thread-worst (deployable) frequencies (MHz). */
    util::RunningStats worstLimitMhz;

    /** Per-chip deployed fastest-slowest differential (MHz). */
    util::RunningStats differentialMhz;
    std::vector<double> differentials;

    /** Per-chip robust-core count. */
    util::RunningStats robustCores;

    /** Fraction of chips with a differential of at least 200 MHz. */
    [[nodiscard]] double fracAbove200Mhz() const;

    /**
     * Serialize the full accumulator state (Welford moments
     * included) so a parsed copy continues folding bitwise where
     * this one stopped -- the checkpoint/resume contract of the
     * fleet campaign driver (src/fleet).
     */
    void writeJson(util::JsonWriter &json) const;

    /** Rebuild from writeJson() output; throws on malformed input. */
    [[nodiscard]] static PopulationStats
    fromJson(const util::JsonValue &value);
};

/**
 * The fold-relevant rows of one characterized chip: everything
 * foldChipSummary() needs, and nothing else, so the record is cheap
 * to ship across a worker-process boundary.
 */
struct ChipCoreSummary
{
    int idleSteps = 0;         ///< Idle limit (CPM steps).
    double idleFreqMhz = 0.0;  ///< ATM frequency at the idle limit.
    double worstFreqMhz = 0.0; ///< Deployable (thread-worst) frequency.
    int rollbackSpread = 0;    ///< uBench-to-worst robustness spread.
};

/** Per-chip summary, tagged with the chip's population index. */
struct ChipSummary
{
    int chipIndex = 0;
    std::vector<ChipCoreSummary> cores;
};

/** Extract the fold rows of a characterized chip. */
[[nodiscard]] ChipSummary summarizeChip(int chipIndex,
                                        const LimitTable &table);

/**
 * Fold one chip into the aggregate. This is THE fold: both
 * studyPopulation() and the fleet supervisor's shard join call it,
 * chip-index order in both cases, so a sharded multi-process
 * campaign reproduces the single-process aggregate bit for bit.
 * Increments stats.chipCount.
 */
void foldChipSummary(PopulationStats &stats, const ChipSummary &chip,
                     int robustSpread);

/**
 * Characterize chips [beginChip, endChip) of the configured
 * population -- the shard-range entry point of the fleet worker.
 * Each chip derives from seedBase + index exactly as in
 * studyPopulation(), so any partition of [0, chipCount) into ranges
 * folds back to the same aggregate.
 *
 * @param config Study parameters (chip identity, generator, seeds).
 * @param beginChip First chip index of the range.
 * @param endChip One past the last chip index.
 * @param metrics Optional registry for characterizer counters and
 *        the `fleet.chips_done` progress counter.
 * @param chipDone Optional per-chip progress callback (heartbeats).
 */
[[nodiscard]] std::vector<ChipSummary>
studyShard(const PopulationConfig &config, int beginChip, int endChip,
           obs::MetricsRegistry *metrics = nullptr,
           const std::function<void(int)> &chipDone = {});

/**
 * Run the study.
 *
 * @param config Study parameters.
 * @return Aggregated statistics over the population.
 */
PopulationStats studyPopulation(const PopulationConfig &config = {});

} // namespace atmsim::core
