/**
 * @file
 * Per-application performance predictor (Sec. VII-B, Fig. 12b):
 * application performance scales linearly with core frequency, with a
 * slope set by the workload's memory behaviour -- compute-bound apps
 * (x264) gain nearly 1:1, memory-bound apps (mcf) flatten because
 * cache misses bound throughput at the fixed nest clock.
 */

#pragma once

#include "util/linear_fit.h"
#include "workload/workload.h"

namespace atmsim::core {

/** Linear performance-vs-frequency model of one application. */
class PerfPredictor
{
  public:
    /**
     * Fit the model by sampling the workload's performance over the
     * ATM frequency range.
     *
     * @param traits Application to model.
     * @param f_lo_mhz Low end of the sampled range.
     * @param f_hi_mhz High end of the sampled range.
     * @param points Number of samples.
     */
    [[nodiscard]]
    static PerfPredictor fit(const workload::WorkloadTraits &traits,
                             double f_lo_mhz = 4200.0,
                             double f_hi_mhz = 5200.0, int points = 11);

    /** Predicted performance at a frequency, relative to the 4.2 GHz
     *  static margin. */
    [[nodiscard]] double predictPerf(double f_mhz) const;

    /**
     * Invert the model: the frequency needed for a performance target
     * (relative to the static margin).
     */
    [[nodiscard]] double requiredFreqMhz(double perf_target) const;

    /** The fitted line. */
    [[nodiscard]] const util::LineFit &fit() const { return fit_; }

    /** The modelled application. */
    [[nodiscard]]
    const workload::WorkloadTraits &traits() const { return *traits_; }

  private:
    const workload::WorkloadTraits *traits_ = nullptr;
    util::LineFit fit_;
};

} // namespace atmsim::core
