/**
 * @file
 * The fine-tuned ATM management layer (Sec. VII / Fig. 13): schedule
 * the critical application onto the right core, derive the chip power
 * budget its QoS target implies (through the per-app performance
 * predictor and the per-core frequency predictor), and throttle the
 * co-running background workloads -- fine-tuned ATM, DVFS p-states or
 * power gating -- to keep total chip power under that budget.
 */

#pragma once

#include <deque>
#include <vector>

#include "chip/chip.h"
#include "core/freq_predictor.h"
#include "core/governor.h"
#include "core/limit_table.h"
#include "core/perf_predictor.h"

namespace atmsim::core {

/** The five evaluation scenarios of Fig. 14. */
enum class Scenario {
    StaticMargin,       ///< 4.2 GHz fixed, the predictable baseline.
    DefaultAtmUnmanaged,///< Factory ATM, no placement or power control.
    FineTunedUnmanaged, ///< Fine-tuned CPMs, careless placement, all
                        ///< background cores at full ATM speed.
    ManagedMax,         ///< Critical on the fastest core, background
                        ///< throttled to the lowest p-state.
    ManagedBalanced,    ///< Critical meets its QoS target; background
                        ///< throttled only as much as necessary.
};

/** Printable scenario name. */
[[nodiscard]] const char *scenarioName(Scenario scenario);

/** A scheduling request: one critical app plus background co-runners. */
struct ScheduleRequest
{
    const workload::WorkloadTraits *critical = nullptr;
    const workload::WorkloadTraits *background = nullptr;

    /** QoS: required critical performance relative to static margin. */
    double qosTarget = 1.10;

    /** Deployment policy for the CPM configurations. */
    GovernorPolicy policy = GovernorPolicy::FineTuned;
};

/** Outcome of evaluating one scenario. */
struct ScenarioResult
{
    Scenario scenario;
    int criticalCore = -1;
    double criticalFreqMhz = 0.0;
    double criticalPerf = 1.0;   ///< Relative to static margin.
    double chipPowerW = 0.0;
    double powerBudgetW = 0.0;   ///< 0 when no budget applies.
    bool qosMet = false;
    std::vector<double> backgroundCapMhz; ///< Per-core cap; 0 = ATM max.
};

/** Manages a fine-tuned ATM chip. */
class AtmManager
{
  public:
    /**
     * @param target Chip to manage (not owned).
     * @param limits Characterization results.
     * @param rollback Extra safety rollback on deployed configs.
     */
    AtmManager(chip::Chip *target, LimitTable limits, int rollback = 0);

    /**
     * Evaluate one Fig. 14 scenario for a <critical : background>
     * pair. The chip's assignments and settings are mutated and left
     * in the evaluated state (callers can inspect, then re-evaluate).
     */
    ScenarioResult evaluate(Scenario scenario,
                            const ScheduleRequest &request);

    /**
     * Pick the critical core for a request under the current limits:
     * the fastest deployed core, restricted to robust cores under the
     * Conservative policy.
     */
    [[nodiscard]] int pickCriticalCore(const ScheduleRequest &request) const;

    /**
     * Check the Table II co-location rule: two memory-intensive
     * workloads are not placed together.
     */
    [[nodiscard]]
    static bool colocationAllowed(const workload::WorkloadTraits &critical,
                                  const workload::WorkloadTraits &background);

    [[nodiscard]] const Governor &governor() const { return governor_; }
    [[nodiscard]]
    const FreqPredictor &freqPredictor() const { return freqPredictor_; }

    /** Per-application performance predictor (cached). */
    const PerfPredictor &perfPredictor(
        const workload::WorkloadTraits &traits);

  private:
    /** Place background instances on every core except the critical. */
    void placeBackground(const ScheduleRequest &request, int critical_core);

    /** Solve and package the common result fields. */
    ScenarioResult finish(Scenario scenario,
                          const ScheduleRequest &request,
                          int critical_core, double budget_w);

    chip::Chip *chip_;
    Governor governor_;
    FreqPredictor freqPredictor_;
    std::deque<PerfPredictor> perfCache_; ///< deque: stable references
};

} // namespace atmsim::core
