/**
 * @file
 * The test-time stress-test procedure of Sec. VII-A: iterate over the
 * cores running worst-case stressmarks (a voltage virus that
 * synchronously throttles issue across the chip while 32 daxpy-class
 * threads hold power near 160 W and the die near 70 degC) to find each
 * core's deployable ATM limit, with an optional extra rollback for an
 * additional safety guarantee (Fig. 11).
 */

#pragma once

#include <vector>

#include "chip/chip.h"
#include "core/characterizer.h"
#include "core/limit_table.h"

namespace atmsim::core {

/** Deployable per-core ATM configuration found at test time. */
struct DeployedConfig
{
    std::string chipName;
    std::vector<int> reductionPerCore;

    /** Idle-conditions ATM frequency of each core when deployed. */
    std::vector<double> idleFreqMhz;

    /** Fastest minus slowest deployed idle frequency (MHz). */
    [[nodiscard]] double speedDifferentialMhz() const;

    /** Index of the fastest core. */
    [[nodiscard]] int fastestCore() const;

    /** Index of the slowest core. */
    [[nodiscard]] int slowestCore() const;
};

/** Runs the test-time stress procedure on a chip. */
class StressTester
{
  public:
    /**
     * @param target Chip under test (not owned).
     * @param config Trial settings (mode, repeats).
     */
    StressTester(chip::Chip *target,
                 const CharacterizerConfig &config = {});

    /**
     * Find one core's stress-test limit: the most aggressive CPM
     * reduction that survives the combined stressmarks across all
     * repeats.
     */
    int stressLimit(int core);

    /**
     * Confirm a configuration survives the stressmarks in every
     * repeat (used to validate thread-worst deployments).
     */
    bool confirmSafe(int core, int reduction);

    /**
     * Full test-time procedure: find every core's limit and derive
     * the deployable configuration.
     *
     * @param rollback_steps Optional extra safety rollback (Fig. 11
     *        shows 0, 1 and 2).
     */
    DeployedConfig deriveDeployedConfig(int rollback_steps = 0);

    /**
     * Stress-test environment summary (chip power, die temperature)
     * with every core running the virus at the given reductions;
     * matches the paper's 160 W / 70 degC setup.
     */
    chip::ChipSteadyState stressEnvironment(
        const std::vector<int> &reductions);

  private:
    chip::Chip *chip_;
    Characterizer characterizer_;
};

} // namespace atmsim::core
