#include "core/perf_predictor.h"

#include "util/logging.h"

namespace atmsim::core {

PerfPredictor
PerfPredictor::fit(const workload::WorkloadTraits &traits, double f_lo_mhz,
                   double f_hi_mhz, int points)
{
    if (points < 2)
        util::fatal("performance fit needs at least 2 points");
    if (f_lo_mhz >= f_hi_mhz)
        util::fatal("performance fit range inverted");

    std::vector<double> f, perf;
    for (int i = 0; i < points; ++i) {
        const double x = f_lo_mhz + (f_hi_mhz - f_lo_mhz) * i
                       / (points - 1);
        f.push_back(x);
        perf.push_back(traits.perfRelative(x));
    }

    PerfPredictor predictor;
    predictor.traits_ = &traits;
    predictor.fit_ = util::fitLine(f, perf);
    return predictor;
}

double
PerfPredictor::predictPerf(double f_mhz) const
{
    return fit_(f_mhz);
}

double
PerfPredictor::requiredFreqMhz(double perf_target) const
{
    if (fit_.slope <= 0.0)
        util::fatal("performance model must have positive slope");
    return (perf_target - fit_.intercept) / fit_.slope;
}

} // namespace atmsim::core
