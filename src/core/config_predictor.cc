#include "core/config_predictor.h"

#include <algorithm>
#include <cmath>

#include "core/characterizer.h"
#include "util/logging.h"

namespace atmsim::core {

double
PredictionAccuracy::exactFrac() const
{
    return evaluated > 0
         ? static_cast<double>(exact) / static_cast<double>(evaluated)
         : 0.0;
}

double
FittedCoreModel::requiredPeriodPs(double droop_mv) const
{
    // Maximize a + b * droop over the feasible (a, b >= 0) set:
    //   lo_i < a + b * D_i <= hi_i  for every probe i.
    // The maximum of a linear objective over this 2D polygon sits at
    // a vertex: enumerate intersections of constraint boundaries
    // (including b = 0) and keep the best feasible point.
    struct Line
    {
        // a + b * d = p
        double d, p;
    };
    std::vector<Line> lines;
    for (const auto &probe : probes) {
        lines.push_back({probe.droopMv, probe.periodLoPs});
        lines.push_back({probe.droopMv, probe.periodHiPs});
    }

    constexpr double eps = 1e-9;
    auto feasible = [&](double a, double b) {
        if (b < -eps)
            return false;
        for (const auto &probe : probes) {
            const double t = a + b * probe.droopMv;
            if (t < probe.periodLoPs - eps || t > probe.periodHiPs + eps)
                return false;
        }
        return true;
    };

    double best = -1.0;
    auto consider = [&](double a, double b) {
        if (feasible(a, b))
            best = std::max(best, a + std::max(b, 0.0) * droop_mv);
    };

    // Pairwise boundary intersections.
    for (std::size_t i = 0; i < lines.size(); ++i) {
        // Intersections with b = 0: a = p_i.
        consider(lines[i].p, 0.0);
        for (std::size_t j = i + 1; j < lines.size(); ++j) {
            const double dd = lines[j].d - lines[i].d;
            if (std::abs(dd) < 1e-12)
                continue;
            const double b = (lines[j].p - lines[i].p) / dd;
            const double a = lines[i].p - b * lines[i].d;
            consider(a, b);
        }
    }
    if (best < 0.0) {
        util::fatal("config predictor: no feasible model for core ",
                    coreName, " (inconsistent probe intervals)");
    }
    return best;
}

ConfigPredictor
ConfigPredictor::fit(
    chip::Chip *target,
    const std::vector<const workload::WorkloadTraits *> &probes)
{
    if (!target)
        util::panic("ConfigPredictor::fit with null chip");
    if (probes.size() < 2)
        util::fatal("config predictor needs at least two probes");
    {
        std::vector<double> droops;
        for (const auto *p : probes)
            droops.push_back(p->droopMv);
        std::sort(droops.begin(), droops.end());
        if (droops.front() == droops.back())
            util::fatal("probes must span distinct droop levels");
    }

    Characterizer characterizer(target);
    ConfigPredictor predictor;
    predictor.chip_ = target;
    for (int c = 0; c < target->coreCount(); ++c) {
        const variation::CoreSiliconParams &silicon =
            target->core(c).silicon();
        const int idle = characterizer.idleLimit(c).limit();
        const int ubench = characterizer.ubenchLimit(c, idle).limit();

        FittedCoreModel model;
        model.coreName = silicon.name;
        model.ubenchLimit = ubench;
        for (const workload::WorkloadTraits *probe : probes) {
            const int limit =
                characterizer.appLimit(c, ubench, *probe).limit();
            ProbeObservation obs;
            obs.droopMv = probe->droopMv;
            obs.periodHiPs =
                silicon.atmPeriodPs(util::CpmSteps{limit}, 1.0).value();
            // When the probe's limit equals the ceiling, the crossing
            // may lie anywhere below; bound it loosely by one
            // further step if available.
            obs.periodLoPs =
                limit + 1 <= silicon.presetSteps
                    ? silicon.atmPeriodPs(util::CpmSteps{limit + 1}, 1.0)
                          .value()
                    : 0.0;
            if (limit == ubench) {
                // The procedure never explores above the uBench
                // ceiling: the crossing could be lower still.
                obs.periodLoPs = 0.0;
            }
            model.probes.push_back(obs);
        }
        predictor.models_.push_back(std::move(model));
    }
    return predictor;
}

int
ConfigPredictor::predictLimit(int core,
                              const workload::WorkloadTraits &app) const
{
    const FittedCoreModel &model = modelFor(core);
    const variation::CoreSiliconParams &silicon =
        chip_->core(core).silicon();
    const double required = model.requiredPeriodPs(app.droopMv);

    int best = 0;
    for (int k = 1; k <= model.ubenchLimit; ++k) {
        if (silicon.atmPeriodPs(util::CpmSteps{k}, 1.0).value()
            < required)
            break;
        best = k;
    }
    return best;
}

const FittedCoreModel &
ConfigPredictor::modelFor(int core) const
{
    if (core < 0 || core >= coreCount())
        util::fatal("config predictor: core ", core, " out of range");
    return models_[static_cast<std::size_t>(core)];
}

PredictionAccuracy
evaluatePredictor(const ConfigPredictor &predictor, chip::Chip *target,
                  const std::vector<const workload::WorkloadTraits *>
                      &apps)
{
    if (!target)
        util::panic("evaluatePredictor with null chip");
    Characterizer characterizer(target);
    PredictionAccuracy accuracy;
    long gap_steps = 0;
    for (int c = 0; c < target->coreCount(); ++c) {
        const int ubench = predictor.modelFor(c).ubenchLimit;
        for (const workload::WorkloadTraits *app : apps) {
            const int predicted = predictor.predictLimit(c, *app);
            const int actual =
                characterizer.appLimit(c, ubench, *app).limit();
            ++accuracy.evaluated;
            if (predicted == actual) {
                ++accuracy.exact;
            } else if (predicted < actual) {
                ++accuracy.conservative;
                gap_steps += actual - predicted;
            } else {
                ++accuracy.optimistic;
            }
        }
    }
    if (accuracy.conservative > 0) {
        accuracy.meanConservativeGap =
            static_cast<double>(gap_steps)
            / static_cast<double>(accuracy.conservative);
    }
    return accuracy;
}

} // namespace atmsim::core
