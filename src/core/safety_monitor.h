/**
 * @file
 * Runtime safety monitor: the recovery half of the deployment story.
 *
 * The characterize-then-deploy flow (Sec. VII-A of the paper) assumes
 * the fine-tuned limits stay safe forever; the monitor drops that
 * assumption. It watches an engine run for timing violations and for
 * anomalous CPM behaviour (phantom margin from a stuck or
 * mis-programmed sensor), and degrades the offending core alone:
 *
 *   Deployed --violation/anomaly--> Quarantined (safe default-ATM
 *   configuration, reduction 0) --another strike--> Fallback (ATM off,
 *   static-margin p-state) --backoff expires--> probe at reduction 0
 *   --survives--> staged re-entry, one CPM step per stage, back to
 *   --the fine-tuned target--> Deployed.
 *
 * Every escalation doubles the re-entry backoff (exponential), so a
 * persistent fault converges to "park at static margin, retry
 * rarely", while a transient fault costs one quarantine round trip.
 * The rest of the chip keeps its fine-tuned limits throughout.
 */

#pragma once

#include <vector>

#include "chip/chip.h"
#include "obs/phase.h"
#include "sim/sim_engine.h"

namespace atmsim::core {

/** Monitor tuning. */
struct SafetyMonitorConfig
{
    /** First re-entry backoff after a quarantine (us). */
    double backoffBaseUs = 3.0;

    /** Backoff growth per escalation (exponential). */
    double backoffMultiplier = 2.0;

    /** Backoff ceiling (us). */
    double maxBackoffUs = 200.0;

    /** Wait between staged re-entry steps (us). */
    double stageIntervalUs = 0.5;

    /**
     * Anomaly guard: a core running faster than the analytic ATM
     * steady state for its programmed reduction by more than this
     * fraction is treated as a lying sensor.
     */
    double freqGuardFrac = 0.04;

    /**
     * Stuck-sensor window: consecutive samples where a CPM site reads
     * the same at a longer and a much shorter probe period before the
     * sensor is declared dead. A healthy delay-chain quantizer always
     * loses counts when the probe removes that much slack.
     */
    int stuckSampleWindow = 4;

    /**
     * Relative period swing of the stuck-sensor probe: the long probe
     * stretches the period by this fraction, the short probe shrinks
     * it by four times as much (deep enough to pull even a site
     * saturated at the chain length off the clamp).
     */
    double probePeriodFrac = 0.05;
};

/** Per-core monitor state. */
enum class CoreSafetyState {
    Deployed,    ///< Running its fine-tuned limits.
    Quarantined, ///< Pulled back to the safe default (reduction 0).
    Fallback,    ///< ATM off; parked at the static-margin p-state.
    Reentry,     ///< Stepping back up toward the fine-tuned target.
};

/** Printable state name. */
[[nodiscard]] const char *coreSafetyStateName(CoreSafetyState state);

/** Watches an engine run and quarantines misbehaving cores. */
class SafetyMonitor : public sim::EngineObserver
{
  public:
    /**
     * @param target Chip under supervision (not owned).
     * @param target_reductions The deployed fine-tuned per-core CPM
     *        reductions the monitor re-enters toward (e.g. from
     *        Governor::reductions(GovernorPolicy::FineTuned)).
     * @param config Monitor tuning.
     */
    SafetyMonitor(chip::Chip *target, std::vector<int> target_reductions,
                  const SafetyMonitorConfig &config = {});

    // --- EngineObserver ------------------------------------------------

    bool onViolation(const sim::ViolationEvent &event) override;
    void onSample(util::Nanoseconds now,
                  const std::vector<sim::CoreSample> &cores) override;
    void finish(util::Nanoseconds end,
                sim::SafetyCounters &counters) override;

    /**
     * Attach observability backends (none owned): state transitions
     * increment `safety_monitor.*` counters and emit instant trace
     * events on the monitor's own track.
     */
    void setObservability(const obs::Observability &sinks);

    // --- Inspection ----------------------------------------------------

    [[nodiscard]] CoreSafetyState state(int core) const;

    /** Current re-entry backoff of a core (us). */
    [[nodiscard]] double backoffUs(int core) const;

    /** Monitor-side counters (quarantines, recoveries, ...). */
    [[nodiscard]]
    const sim::SafetyCounters &counters() const { return counters_; }

    /** Re-arm for a fresh run: all cores Deployed, counters cleared.
     *  Does not touch the chip configuration. */
    void rearm();

    [[nodiscard]] const SafetyMonitorConfig &config() const { return config_; }

  private:
    struct CoreState
    {
        CoreSafetyState state = CoreSafetyState::Deployed;
        double backoffUs = 0.0;
        double deadlineNs = 0.0;
        int target = 0;       ///< Fine-tuned reduction to re-enter.
        int current = 0;      ///< Reduction the monitor last applied.
        double degradedSinceNs = -1.0;

        // Stuck-sensor tracking: consecutive probe-insensitive samples.
        int insensitiveSamples = 0;
    };

    /** Violation/anomaly response: quarantine or escalate. */
    void demote(int core, double now_ns);
    void quarantine(int core, double now_ns);
    void escalate(int core, double now_ns);
    void restartAtm(int core, int reduction);
    void markDegraded(CoreState &cs, double now_ns);

    /** Count a state transition on its pre-resolved counter, trace
     *  it as an instant event, and log it to the flight recorder
     *  under the given event kind. */
    void note(obs::Counter *counter, const char *transition,
              obs::FlightEventKind kind, int core, double now_ns);

    chip::Chip *chip_;
    SafetyMonitorConfig config_;
    std::vector<CoreState> cores_;
    sim::SafetyCounters counters_;

    obs::Observability obs_;
    int traceTrack_ = -1;

    // Transition counters resolved once in setObservability: note()
    // runs inside the engine's step loop, where a registry lookup
    // (name formation, map probe under the registry mutex) is off
    // contract.
    obs::Counter *quarantineCounter_ = nullptr;
    obs::Counter *fallbackCounter_ = nullptr;
    obs::Counter *recoveryCounter_ = nullptr;
    obs::Counter *anomalyCounter_ = nullptr;
};

} // namespace atmsim::core
