#include "core/population.h"

#include <algorithm>
#include <string>

#include "chip/chip.h"
#include "core/characterizer.h"
#include "core/limit_table.h"
#include "exec/thread_pool.h"
#include "util/logging.h"

namespace atmsim::core {

double
PopulationStats::fracAbove200Mhz() const
{
    if (differentials.empty())
        return 0.0;
    const auto count = std::count_if(differentials.begin(),
                                     differentials.end(),
                                     [](double d) { return d >= 200.0; });
    return static_cast<double>(count)
         / static_cast<double>(differentials.size());
}

PopulationStats
studyPopulation(const PopulationConfig &config)
{
    if (config.chipCount <= 0)
        util::fatal("population needs at least one chip");

    // Each chip is generated from seedBase + index and characterized
    // in its own task; the fold below then consumes the tables in
    // chip order, so the aggregate matches the old sequential loop
    // bitwise at every job count.
    const std::vector<LimitTable> tables = exec::parallelMap<LimitTable>(
        static_cast<std::size_t>(config.chipCount),
        [&](std::size_t i) {
            const std::string name = "POP" + std::to_string(i);
            chip::Chip chip(variation::generateChip(
                name, config.seedBase + i, config.generator));
            Characterizer characterizer(&chip);
            return characterizer.characterizeChip();
        },
        config.jobs);

    PopulationStats stats;
    stats.chipCount = config.chipCount;
    for (const LimitTable &table : tables) {
        double fast = 0.0, slow = 1e18;
        int robust = 0;
        for (const auto &core : table.cores) {
            stats.idleLimitSteps.add(core.idle);
            stats.idleLimitMhz.add(core.idleLimitFreqMhz);
            stats.worstLimitMhz.add(core.worstLimitFreqMhz);
            fast = std::max(fast, core.worstLimitFreqMhz);
            slow = std::min(slow, core.worstLimitFreqMhz);
            if (core.rollbackSpread() <= config.robustSpread)
                ++robust;
        }
        stats.differentialMhz.add(fast - slow);
        stats.differentials.push_back(fast - slow);
        stats.robustCores.add(static_cast<double>(robust));
    }
    return stats;
}

} // namespace atmsim::core
