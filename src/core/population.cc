#include "core/population.h"

#include <algorithm>

#include "chip/chip.h"
#include "core/characterizer.h"
#include "util/logging.h"

namespace atmsim::core {

double
PopulationStats::fracAbove200Mhz() const
{
    if (differentials.empty())
        return 0.0;
    const auto count = std::count_if(differentials.begin(),
                                     differentials.end(),
                                     [](double d) { return d >= 200.0; });
    return static_cast<double>(count)
         / static_cast<double>(differentials.size());
}

PopulationStats
studyPopulation(const PopulationConfig &config)
{
    if (config.chipCount <= 0)
        util::fatal("population needs at least one chip");

    PopulationStats stats;
    stats.chipCount = config.chipCount;
    for (int i = 0; i < config.chipCount; ++i) {
        const std::string name = "POP" + std::to_string(i);
        chip::Chip chip(variation::generateChip(
            name, config.seedBase + static_cast<std::uint64_t>(i),
            config.generator));
        Characterizer characterizer(&chip);
        const LimitTable table = characterizer.characterizeChip();

        double fast = 0.0, slow = 1e18;
        int robust = 0;
        for (const auto &core : table.cores) {
            stats.idleLimitSteps.add(core.idle);
            stats.idleLimitMhz.add(core.idleLimitFreqMhz);
            stats.worstLimitMhz.add(core.worstLimitFreqMhz);
            fast = std::max(fast, core.worstLimitFreqMhz);
            slow = std::min(slow, core.worstLimitFreqMhz);
            if (core.rollbackSpread() <= config.robustSpread)
                ++robust;
        }
        stats.differentialMhz.add(fast - slow);
        stats.differentials.push_back(fast - slow);
        stats.robustCores.add(static_cast<double>(robust));
    }
    return stats;
}

} // namespace atmsim::core
