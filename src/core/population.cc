#include "core/population.h"

#include <algorithm>
#include <string>
#include <utility>

#include "chip/chip.h"
#include "core/characterizer.h"
#include "core/limit_table.h"
#include "exec/thread_pool.h"
#include "obs/phase.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace atmsim::core {

namespace {

/** Serialize one RunningStats accumulator exactly. */
void
writeRunningStats(util::JsonWriter &json, const util::RunningStats &s)
{
    json.beginObject();
    json.field("n", static_cast<std::uint64_t>(s.count()));
    if (s.count() > 0) {
        json.field("mean", s.mean());
        json.field("m2", s.m2());
        json.field("min", s.min());
        json.field("max", s.max());
    }
    json.endObject();
}

[[nodiscard]] util::RunningStats
readRunningStats(const util::JsonValue &value)
{
    const auto n =
        static_cast<std::size_t>(value.at("n").asLong());
    if (n == 0)
        return {};
    return util::RunningStats::fromState(n, value.at("mean").asDouble(),
                                         value.at("m2").asDouble(),
                                         value.at("min").asDouble(),
                                         value.at("max").asDouble());
}

void
writeIntHistogram(util::JsonWriter &json, const util::IntHistogram &h)
{
    json.beginArray();
    for (const auto &[value, count] : h.items()) {
        json.beginArray();
        json.value(value);
        json.value(static_cast<std::uint64_t>(count));
        json.endArray();
    }
    json.endArray();
}

[[nodiscard]] util::IntHistogram
readIntHistogram(const util::JsonValue &value)
{
    util::IntHistogram h;
    for (const util::JsonValue &item : value.asArray()) {
        const util::JsonValue::Array &pair = item.asArray();
        if (pair.size() != 2)
            util::fatal("population JSON: histogram item is not a "
                        "[value, count] pair");
        h.add(static_cast<long>(pair[0].asLong()),
              static_cast<std::size_t>(pair[1].asLong()));
    }
    return h;
}

} // namespace

double
PopulationStats::fracAbove200Mhz() const
{
    if (differentials.empty())
        return 0.0;
    const auto count = std::count_if(differentials.begin(),
                                     differentials.end(),
                                     [](double d) { return d >= 200.0; });
    return static_cast<double>(count)
         / static_cast<double>(differentials.size());
}

void
PopulationStats::writeJson(util::JsonWriter &json) const
{
    json.beginObject();
    json.field("chip_count", chipCount);
    json.key("idle_limit_steps");
    writeIntHistogram(json, idleLimitSteps);
    json.key("idle_limit_mhz");
    writeRunningStats(json, idleLimitMhz);
    json.key("worst_limit_mhz");
    writeRunningStats(json, worstLimitMhz);
    json.key("differential_mhz");
    writeRunningStats(json, differentialMhz);
    json.key("robust_cores");
    writeRunningStats(json, robustCores);
    json.key("differentials").beginArray();
    for (const double d : differentials)
        json.value(d);
    json.endArray();
    json.endObject();
}

PopulationStats
PopulationStats::fromJson(const util::JsonValue &value)
{
    PopulationStats stats;
    stats.chipCount =
        static_cast<int>(value.at("chip_count").asLong());
    if (stats.chipCount < 0)
        util::fatal("population JSON: negative chip count");
    stats.idleLimitSteps =
        readIntHistogram(value.at("idle_limit_steps"));
    stats.idleLimitMhz = readRunningStats(value.at("idle_limit_mhz"));
    stats.worstLimitMhz =
        readRunningStats(value.at("worst_limit_mhz"));
    stats.differentialMhz =
        readRunningStats(value.at("differential_mhz"));
    stats.robustCores = readRunningStats(value.at("robust_cores"));
    for (const util::JsonValue &d :
         value.at("differentials").asArray())
        stats.differentials.push_back(d.asDouble());
    if (stats.differentials.size()
        != static_cast<std::size_t>(stats.chipCount))
        util::fatal("population JSON: ", stats.differentials.size(),
                    " differentials for ", stats.chipCount, " chips");
    return stats;
}

ChipSummary
summarizeChip(int chipIndex, const LimitTable &table)
{
    ChipSummary summary;
    summary.chipIndex = chipIndex;
    summary.cores.reserve(table.cores.size());
    for (const CoreLimits &core : table.cores) {
        ChipCoreSummary row;
        row.idleSteps = core.idle;
        row.idleFreqMhz = core.idleLimitFreqMhz;
        row.worstFreqMhz = core.worstLimitFreqMhz;
        row.rollbackSpread = core.rollbackSpread();
        summary.cores.push_back(row);
    }
    return summary;
}

void
foldChipSummary(PopulationStats &stats, const ChipSummary &chip,
                int robustSpread)
{
    double fast = 0.0, slow = 1e18;
    int robust = 0;
    for (const ChipCoreSummary &core : chip.cores) {
        stats.idleLimitSteps.add(core.idleSteps);
        stats.idleLimitMhz.add(core.idleFreqMhz);
        stats.worstLimitMhz.add(core.worstFreqMhz);
        fast = std::max(fast, core.worstFreqMhz);
        slow = std::min(slow, core.worstFreqMhz);
        if (core.rollbackSpread <= robustSpread)
            ++robust;
    }
    stats.differentialMhz.add(fast - slow);
    stats.differentials.push_back(fast - slow);
    stats.robustCores.add(static_cast<double>(robust));
    stats.chipCount += 1;
}

std::vector<ChipSummary>
studyShard(const PopulationConfig &config, int beginChip, int endChip,
           obs::MetricsRegistry *metrics,
           const std::function<void(int)> &chipDone)
{
    if (beginChip < 0 || endChip < beginChip
        || endChip > config.chipCount)
        util::fatal("shard range [", beginChip, ", ", endChip,
                    ") is outside the population of ",
                    config.chipCount, " chips");
    std::vector<ChipSummary> out;
    out.reserve(static_cast<std::size_t>(endChip - beginChip));
    for (int i = beginChip; i < endChip; ++i) {
        const std::string name = "POP" + std::to_string(i);
        chip::Chip chip(variation::generateChip(
            name, config.seedBase + static_cast<std::uint64_t>(i),
            config.generator));
        CharacterizerConfig ccfg;
        // Inline: fleet parallelism is process-level, and the
        // characterizer's jobs-invariance contract guarantees the
        // table (and metric snapshot) match any other job count.
        ccfg.jobs = 1;
        Characterizer characterizer(&chip, ccfg);
        if (metrics)
            characterizer.setObservability({metrics, nullptr});
        out.push_back(summarizeChip(i, characterizer.characterizeChip()));
        if (metrics)
            metrics->counter("fleet.chips_done").inc();
        if (chipDone)
            chipDone(i);
    }
    return out;
}

PopulationStats
studyPopulation(const PopulationConfig &config)
{
    if (config.chipCount <= 0)
        util::fatal("population needs at least one chip");

    // Each chip is generated from seedBase + index and characterized
    // in its own task; the fold below then consumes the tables in
    // chip order, so the aggregate matches the old sequential loop
    // bitwise at every job count.
    const std::vector<LimitTable> tables = exec::parallelMap<LimitTable>(
        static_cast<std::size_t>(config.chipCount),
        [&](std::size_t i) {
            const std::string name = "POP" + std::to_string(i);
            chip::Chip chip(variation::generateChip(
                name, config.seedBase + i, config.generator));
            Characterizer characterizer(&chip);
            return characterizer.characterizeChip();
        },
        config.jobs);

    PopulationStats stats;
    for (int i = 0; i < config.chipCount; ++i) {
        foldChipSummary(
            stats,
            summarizeChip(i, tables[static_cast<std::size_t>(i)]),
            config.robustSpread);
    }
    return stats;
}

} // namespace atmsim::core
