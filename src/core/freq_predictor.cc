#include "core/freq_predictor.h"

#include "util/logging.h"
#include "workload/catalog.h"

namespace atmsim::core {

FreqPredictor
FreqPredictor::fit(chip::Chip *target, int sweep_points)
{
    if (!target)
        util::panic("FreqPredictor::fit with null chip");
    if (sweep_points < 2)
        util::fatal("frequency fit needs at least 2 sweep points");

    const int n = target->coreCount();
    std::vector<std::vector<double>> power_samples(
        static_cast<std::size_t>(n));
    std::vector<std::vector<double>> freq_samples(
        static_cast<std::size_t>(n));

    // Sweep the chip load from idle to all-cores-busy by adding one
    // daxpy-loaded core per point and increasing SMT occupancy.
    const workload::WorkloadTraits &load = workload::findWorkload("daxpy");
    for (int point = 0; point < sweep_points; ++point) {
        target->clearAssignments();
        const int busy_cores = point * n / std::max(sweep_points - 1, 1);
        const int threads = 1 + (point * 3) / std::max(sweep_points - 1, 1);
        for (int c = 0; c < busy_cores; ++c)
            target->assignWorkload(c, &load, threads);

        const chip::ChipSteadyState st = target->solveSteadyState();
        for (int c = 0; c < n; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            power_samples[ci].push_back(st.chipPowerW.value());
            freq_samples[ci].push_back(st.coreFreqMhz[ci].value());
        }
    }
    target->clearAssignments();

    FreqPredictor predictor;
    predictor.fits_.reserve(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        predictor.fits_.push_back(
            util::fitLine(power_samples[ci], freq_samples[ci]));
    }
    return predictor;
}

double
FreqPredictor::predictMhz(int core, double chip_power_w) const
{
    return fitFor(core)(chip_power_w);
}

double
FreqPredictor::powerBudgetW(int core, double required_mhz) const
{
    const util::LineFit &fit = fitFor(core);
    if (fit.slope >= 0.0)
        util::fatal("frequency model must have negative slope");
    return (required_mhz - fit.intercept) / fit.slope;
}

const util::LineFit &
FreqPredictor::fitFor(int core) const
{
    if (core < 0 || core >= coreCount())
        util::fatal("freq predictor: core ", core, " out of range");
    return fits_[static_cast<std::size_t>(core)];
}

} // namespace atmsim::core
