#include "dpll/dpll.h"

#include <algorithm>

#include "util/logging.h"

namespace atmsim::dpll {

Dpll::Dpll(const DpllParams &params) : params_(params)
{
    if (params_.targetCounts <= params_.emergencyCounts)
        util::fatal("DPLL target must exceed the emergency threshold");
    if (params_.minPeriod >= params_.maxPeriod)
        util::fatal("DPLL period bounds inverted");
}

void
Dpll::reset(Picoseconds period)
{
    period_ = period;
    clampPeriod();
    lastUpdate_ = Nanoseconds{-1e18};
    lastEmergency_ = Nanoseconds{-1e18};
    emergencies_ = 0;
    slewDowns_ = 0;
    slewUps_ = 0;
    heldMargin_ = 0;
    heldValid_ = false;
}

void
Dpll::setSensorDropout(bool active)
{
    dropout_ = active;
}

void
Dpll::observe(Nanoseconds now, int margin_counts)
{
    if (dropout_) {
        // The sensor input is gone; the loop keeps acting on the last
        // healthy reading and is blind to anything happening now.
        if (!heldValid_)
            return;
        margin_counts = heldMargin_;
    } else {
        heldMargin_ = margin_counts;
        heldValid_ = true;
    }
    // Emergency fast path: immediate stretch, rate limited.
    if (margin_counts <= params_.emergencyCounts) {
        if (now - lastEmergency_ >= params_.emergencyHoldoff) {
            period_ *= 1.0 + params_.emergencyStretchFrac;
            lastEmergency_ = now;
            ++emergencies_;
            clampPeriod();
        }
        // An emergency restarts the proportional interval so the slow
        // path does not immediately undo the stretch.
        lastUpdate_ = now;
        return;
    }

    if (now - lastUpdate_ < params_.updateInterval)
        return;
    lastUpdate_ = now;

    const int error = margin_counts - params_.targetCounts;
    if (error < 0) {
        period_ *= 1.0 + params_.slewDownPerCount * (-error);
        ++slewDowns_;
    } else if (error > 0) {
        const int step = std::min(error, params_.slewUpCapCounts);
        period_ *= 1.0 - params_.slewUpPerCount * step;
        ++slewUps_;
    }
    clampPeriod();
}

Mhz
Dpll::frequencyMhz() const
{
    return util::frequencyOf(period_);
}

bool
Dpll::inEmergency(Nanoseconds now) const
{
    return now - lastEmergency_ < params_.emergencyHoldoff;
}

void
Dpll::clampPeriod()
{
    period_ = std::clamp(period_, params_.minPeriod, params_.maxPeriod);
}

} // namespace atmsim::dpll
