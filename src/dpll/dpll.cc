#include "dpll/dpll.h"

#include <algorithm>

#include "util/logging.h"
#include "util/units.h"

namespace atmsim::dpll {

Dpll::Dpll(const DpllParams &params) : params_(params)
{
    if (params_.targetCounts <= params_.emergencyCounts)
        util::fatal("DPLL target must exceed the emergency threshold");
    if (params_.minPeriodPs >= params_.maxPeriodPs)
        util::fatal("DPLL period bounds inverted");
}

void
Dpll::reset(double period_ps)
{
    periodPs_ = period_ps;
    clampPeriod();
    lastUpdateNs_ = -1e18;
    lastEmergencyNs_ = -1e18;
    emergencies_ = 0;
    heldMargin_ = 0;
    heldValid_ = false;
}

void
Dpll::setSensorDropout(bool active)
{
    dropout_ = active;
}

void
Dpll::observe(double now_ns, int margin_counts)
{
    if (dropout_) {
        // The sensor input is gone; the loop keeps acting on the last
        // healthy reading and is blind to anything happening now.
        if (!heldValid_)
            return;
        margin_counts = heldMargin_;
    } else {
        heldMargin_ = margin_counts;
        heldValid_ = true;
    }
    // Emergency fast path: immediate stretch, rate limited.
    if (margin_counts <= params_.emergencyCounts) {
        if (now_ns - lastEmergencyNs_ >= params_.emergencyHoldoffNs) {
            periodPs_ *= 1.0 + params_.emergencyStretchFrac;
            lastEmergencyNs_ = now_ns;
            ++emergencies_;
            clampPeriod();
        }
        // An emergency restarts the proportional interval so the slow
        // path does not immediately undo the stretch.
        lastUpdateNs_ = now_ns;
        return;
    }

    if (now_ns - lastUpdateNs_ < params_.updateIntervalNs)
        return;
    lastUpdateNs_ = now_ns;

    const int error = margin_counts - params_.targetCounts;
    if (error < 0) {
        periodPs_ *= 1.0 + params_.slewDownPerCount * (-error);
    } else if (error > 0) {
        const int step = std::min(error, params_.slewUpCapCounts);
        periodPs_ *= 1.0 - params_.slewUpPerCount * step;
    }
    clampPeriod();
}

double
Dpll::frequencyMhz() const
{
    return util::psToMhz(periodPs_);
}

bool
Dpll::inEmergency(double now_ns) const
{
    return now_ns - lastEmergencyNs_ < params_.emergencyHoldoffNs;
}

void
Dpll::clampPeriod()
{
    periodPs_ = std::clamp(periodPs_, params_.minPeriodPs,
                           params_.maxPeriodPs);
}

} // namespace atmsim::dpll
