#include "dpll/dpll.h"

#include <algorithm>

#include "util/logging.h"

namespace atmsim::dpll {

Dpll::Dpll(const DpllParams &params) : params_(params)
{
    if (params_.targetCounts <= params_.emergencyCounts)
        util::fatal("DPLL target must exceed the emergency threshold");
    if (params_.minPeriod >= params_.maxPeriod)
        util::fatal("DPLL period bounds inverted");
}

void
Dpll::reset(Picoseconds period)
{
    period_ = period;
    clampPeriod();
    lastUpdate_ = Nanoseconds{-1e18};
    lastEmergency_ = Nanoseconds{-1e18};
    emergencies_ = 0;
    slewDowns_ = 0;
    slewUps_ = 0;
    heldMargin_ = 0;
    heldValid_ = false;
}

void
Dpll::setSensorDropout(bool active)
{
    dropout_ = active;
}

void
Dpll::observe(Nanoseconds now, int margin_counts)
{
    if (dropout_) {
        // The sensor input is gone; the loop keeps acting on the last
        // healthy reading and is blind to anything happening now.
        if (!heldValid_)
            return;
        margin_counts = heldMargin_;
    } else {
        heldMargin_ = margin_counts;
        heldValid_ = true;
    }
    // Emergency fast path: immediate stretch, rate limited.
    if (margin_counts <= params_.emergencyCounts) {
        if (now - lastEmergency_ >= params_.emergencyHoldoff) {
            period_ *= 1.0 + params_.emergencyStretchFrac;
            lastEmergency_ = now;
            ++emergencies_;
            clampPeriod();
        }
        // An emergency restarts the proportional interval so the slow
        // path does not immediately undo the stretch.
        lastUpdate_ = now;
        return;
    }

    if (now - lastUpdate_ < params_.updateInterval)
        return;
    lastUpdate_ = now;

    const int error = margin_counts - params_.targetCounts;
    if (error < 0) {
        period_ *= 1.0 + params_.slewDownPerCount * (-error);
        ++slewDowns_;
    } else if (error > 0) {
        const int step = std::min(error, params_.slewUpCapCounts);
        period_ *= 1.0 - params_.slewUpPerCount * step;
        ++slewUps_;
    }
    clampPeriod();
}

DpllState
Dpll::exportState() const
{
    DpllState state;
    state.periodPs = period_.value();
    state.lastUpdateNs = lastUpdate_.value();
    state.lastEmergencyNs = lastEmergency_.value();
    state.emergencies = emergencies_;
    state.slewDowns = slewDowns_;
    state.slewUps = slewUps_;
    state.heldMargin = heldMargin_;
    state.heldValid = heldValid_;
    state.dropout = dropout_;
    return state;
}

void
Dpll::importState(const DpllState &state)
{
    period_ = Picoseconds{state.periodPs};
    lastUpdate_ = Nanoseconds{state.lastUpdateNs};
    lastEmergency_ = Nanoseconds{state.lastEmergencyNs};
    emergencies_ = state.emergencies;
    slewDowns_ = state.slewDowns;
    slewUps_ = state.slewUps;
    heldMargin_ = state.heldMargin;
    heldValid_ = state.heldValid;
    dropout_ = state.dropout;
}

void
DpllBankSoa::resize(std::size_t cores, const DpllParams &params)
{
    periodPs.assign(cores, 250.0);
    lastUpdateNs.assign(cores, -1e18);
    lastEmergencyNs.assign(cores, -1e18);
    emergencies.assign(cores, 0);
    slewDowns.assign(cores, 0);
    slewUps.assign(cores, 0);
    heldMargin.assign(cores, 0);
    heldValid.assign(cores, 0);
    dropout.assign(cores, 0);
    adjustments = 0;

    updateIntervalNs = params.updateInterval.value();
    emergencyHoldoffNs = params.emergencyHoldoff.value();
    slewDownPerCount = params.slewDownPerCount;
    slewUpPerCount = params.slewUpPerCount;
    emergencyStretchFrac = params.emergencyStretchFrac;
    minPeriodPs = params.minPeriod.value();
    maxPeriodPs = params.maxPeriod.value();
    targetCounts = params.targetCounts;
    emergencyCounts = params.emergencyCounts;
    slewUpCapCounts = params.slewUpCapCounts;
}

void
DpllBankSoa::load(std::size_t core, const Dpll &loop)
{
    const DpllState state = loop.exportState();
    periodPs[core] = state.periodPs;
    lastUpdateNs[core] = state.lastUpdateNs;
    lastEmergencyNs[core] = state.lastEmergencyNs;
    emergencies[core] = state.emergencies;
    slewDowns[core] = state.slewDowns;
    slewUps[core] = state.slewUps;
    heldMargin[core] = state.heldMargin;
    heldValid[core] = state.heldValid ? 1 : 0;
    dropout[core] = state.dropout ? 1 : 0;
}

void
DpllBankSoa::store(std::size_t core, Dpll &loop) const
{
    DpllState state;
    state.periodPs = periodPs[core];
    state.lastUpdateNs = lastUpdateNs[core];
    state.lastEmergencyNs = lastEmergencyNs[core];
    state.emergencies = emergencies[core];
    state.slewDowns = slewDowns[core];
    state.slewUps = slewUps[core];
    state.heldMargin = heldMargin[core];
    state.heldValid = heldValid[core] != 0;
    state.dropout = dropout[core] != 0;
    loop.importState(state);
}

Mhz
Dpll::frequencyMhz() const
{
    return util::frequencyOf(period_);
}

bool
Dpll::inEmergency(Nanoseconds now) const
{
    return now - lastEmergency_ < params_.emergencyHoldoff;
}

void
Dpll::clampPeriod()
{
    period_ = std::clamp(period_, params_.minPeriod, params_.maxPeriod);
}

} // namespace atmsim::dpll
