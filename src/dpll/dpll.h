/**
 * @file
 * Per-core digital phase-locked loop: the agile clock generator of the
 * ATM control loop (Sec. II of the paper). Every update interval it
 * compares the CPM bank's worst count against a threshold and slews
 * the clock period; on an emergency (margin near zero, e.g. a fast
 * di/dt droop) it stretches the clock immediately, which is the
 * lower-penalty alternative to gating the clock for a cycle.
 */

#pragma once

#include "util/quantity.h"

namespace atmsim::dpll {

using util::Mhz;
using util::Nanoseconds;
using util::Picoseconds;

/** Control-loop parameters. */
struct DpllParams
{
    /** Proportional-control update interval; also the loop round-trip
     *  latency for non-emergency adjustments. */
    Nanoseconds updateInterval{2.0};

    /** Margin setpoint in CPM inverter counts (~6 ps at 1.5 ps/inv). */
    int targetCounts = 4;

    /** Margin at or below which the emergency path engages. */
    int emergencyCounts = 1;

    /** Fractional period increase per count of deficit. */
    double slewDownPerCount = 0.004;

    /** Fractional period decrease per count of surplus. */
    double slewUpPerCount = 0.0008;

    /** Largest surplus used for a single upward slew. */
    int slewUpCapCounts = 4;

    /** Immediate fractional period stretch on an emergency. */
    double emergencyStretchFrac = 0.01;

    /** Minimum time between emergency stretches. */
    Nanoseconds emergencyHoldoff{1.0};

    /** Clock period bounds. */
    Picoseconds minPeriod{166.0}; ///< ~6.0 GHz
    Picoseconds maxPeriod{500.0}; ///< ~2.0 GHz
};

/** Slew-limited adaptive clock generator. */
class Dpll
{
  public:
    explicit Dpll(const DpllParams &params = {});

    /** Reset to a starting period and clear loop state. */
    void reset(Picoseconds period);

    /**
     * Feed one margin observation. The proportional path acts only at
     * update-interval boundaries; the emergency path acts immediately
     * (subject to a holdoff).
     *
     * @param now Current simulation time.
     * @param margin_counts Worst CPM count this cycle.
     */
    void observe(Nanoseconds now, int margin_counts);

    /** Current clock period. */
    Picoseconds periodPs() const { return period_; }

    /** Current clock frequency. */
    Mhz frequencyMhz() const;

    /** True if the emergency path fired within the last holdoff. */
    bool inEmergency(Nanoseconds now) const;

    /** Number of emergency engagements since reset. */
    long emergencyCount() const { return emergencies_; }

    /** Downward slews (period stretches) since reset, emergencies
     *  excluded. */
    long slewDownCount() const { return slewDowns_; }

    /** Upward slews (period shrinks) since reset. */
    long slewUpCount() const { return slewUps_; }

    /**
     * Fault injection: drop the CPM sensor input. While active the
     * loop holds the last margin it observed before the dropout
     * (hold-last semantics), so it neither slews nor engages the
     * emergency path in response to fresh droops -- the hazard the
     * fault campaigns probe.
     */
    void setSensorDropout(bool active);
    bool sensorDropout() const { return dropout_; }

    const DpllParams &params() const { return params_; }

  private:
    void clampPeriod();

    DpllParams params_;
    Picoseconds period_{250.0};
    Nanoseconds lastUpdate_{-1e18};
    Nanoseconds lastEmergency_{-1e18};
    long emergencies_ = 0;
    long slewDowns_ = 0;
    long slewUps_ = 0;
    bool dropout_ = false;
    int heldMargin_ = 0;
    bool heldValid_ = false;
};

} // namespace atmsim::dpll
