/**
 * @file
 * Per-core digital phase-locked loop: the agile clock generator of the
 * ATM control loop (Sec. II of the paper). Every update interval it
 * compares the CPM bank's worst count against a threshold and slews
 * the clock period; on an emergency (margin near zero, e.g. a fast
 * di/dt droop) it stretches the clock immediately, which is the
 * lower-penalty alternative to gating the clock for a cycle.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hotpath_annotations.h"
#include "util/quantity.h"

namespace atmsim::dpll {

using util::Mhz;
using util::Nanoseconds;
using util::Picoseconds;

/** Control-loop parameters. */
struct DpllParams
{
    /** Proportional-control update interval; also the loop round-trip
     *  latency for non-emergency adjustments. */
    Nanoseconds updateInterval{2.0};

    /** Margin setpoint in CPM inverter counts (~6 ps at 1.5 ps/inv). */
    int targetCounts = 4;

    /** Margin at or below which the emergency path engages. */
    int emergencyCounts = 1;

    /** Fractional period increase per count of deficit. */
    double slewDownPerCount = 0.004;

    /** Fractional period decrease per count of surplus. */
    double slewUpPerCount = 0.0008;

    /** Largest surplus used for a single upward slew. */
    int slewUpCapCounts = 4;

    /** Immediate fractional period stretch on an emergency. */
    double emergencyStretchFrac = 0.01;

    /** Minimum time between emergency stretches. */
    Nanoseconds emergencyHoldoff{1.0};

    /** Clock period bounds. */
    Picoseconds minPeriod{166.0}; ///< ~6.0 GHz
    Picoseconds maxPeriod{500.0}; ///< ~2.0 GHz
};

/**
 * Snapshot of one loop's mutable state, for the engine's SoA mirror
 * (DpllBankSoa). Raw doubles: the engine keeps these in contiguous
 * per-core arrays and round-trips them through export/import around
 * fault edges and observer callbacks.
 */
struct DpllState
{
    double periodPs = 250.0;
    double lastUpdateNs = -1e18;
    double lastEmergencyNs = -1e18;
    long emergencies = 0;
    long slewDowns = 0;
    long slewUps = 0;
    int heldMargin = 0;
    bool heldValid = false;
    bool dropout = false;
};

/** Slew-limited adaptive clock generator. */
class Dpll
{
  public:
    explicit Dpll(const DpllParams &params = {});

    /** Reset to a starting period and clear loop state. */
    void reset(Picoseconds period);

    /**
     * Feed one margin observation. The proportional path acts only at
     * update-interval boundaries; the emergency path acts immediately
     * (subject to a holdoff).
     *
     * @param now Current simulation time.
     * @param margin_counts Worst CPM count this cycle.
     */
    void observe(Nanoseconds now, int margin_counts);

    /** Current clock period. */
    Picoseconds periodPs() const { return period_; }

    /** Current clock frequency. */
    Mhz frequencyMhz() const;

    /** True if the emergency path fired within the last holdoff. */
    bool inEmergency(Nanoseconds now) const;

    /** Number of emergency engagements since reset. */
    long emergencyCount() const { return emergencies_; }

    /** Downward slews (period stretches) since reset, emergencies
     *  excluded. */
    long slewDownCount() const { return slewDowns_; }

    /** Upward slews (period shrinks) since reset. */
    long slewUpCount() const { return slewUps_; }

    /**
     * Fault injection: drop the CPM sensor input. While active the
     * loop holds the last margin it observed before the dropout
     * (hold-last semantics), so it neither slews nor engages the
     * emergency path in response to fresh droops -- the hazard the
     * fault campaigns probe.
     */
    void setSensorDropout(bool active);
    bool sensorDropout() const { return dropout_; }

    const DpllParams &params() const { return params_; }

    /** Export the mutable loop state (SoA mirror handshake). */
    [[nodiscard]] DpllState exportState() const;

    /** Restore a state previously produced by exportState(). The
     *  period is taken verbatim (no re-clamp): a round trip must be
     *  lossless. */
    void importState(const DpllState &state);

  private:
    void clampPeriod();

    DpllParams params_;
    Picoseconds period_{250.0};
    Nanoseconds lastUpdate_{-1e18};
    Nanoseconds lastEmergency_{-1e18};
    long emergencies_ = 0;
    long slewDowns_ = 0;
    long slewUps_ = 0;
    bool dropout_ = false;
    int heldMargin_ = 0;
    bool heldValid_ = false;
};

/**
 * Structure-of-arrays mirror of a bank of per-core DPLLs, for the
 * engine's SoA step path (DESIGN.md, engine architecture). All cores
 * of a chip share one DpllParams (chip::ChipConfig::dpllParams), so
 * the parameters live here once and the per-loop state is contiguous
 * arrays. observe() replicates Dpll::observe() operation for
 * operation -- the SoA engine mode is gated on bitwise identity with
 * the per-object path.
 *
 * `adjustments` counts every period modification (slew or emergency
 * stretch); the steady-state detector reads it to decide whether the
 * clocks have settled without comparing floating-point periods.
 */
struct DpllBankSoa
{
    std::vector<double> periodPs;
    std::vector<double> lastUpdateNs;
    std::vector<double> lastEmergencyNs;
    std::vector<long> emergencies;
    std::vector<long> slewDowns;
    std::vector<long> slewUps;
    std::vector<int> heldMargin;
    std::vector<std::uint8_t> heldValid;
    std::vector<std::uint8_t> dropout;
    long adjustments = 0;

    // Params flattened to raw doubles once at build time.
    double updateIntervalNs = 2.0;
    double emergencyHoldoffNs = 1.0;
    double slewDownPerCount = 0.004;
    double slewUpPerCount = 0.0008;
    double emergencyStretchFrac = 0.01;
    double minPeriodPs = 166.0;
    double maxPeriodPs = 500.0;
    int targetCounts = 4;
    int emergencyCounts = 1;
    int slewUpCapCounts = 4;

    /** Size the arrays and flatten the shared params. */
    // atmlint: contract(cold)
    void resize(std::size_t cores, const DpllParams &params);

    /** Import one loop's state (object -> arrays). */
    void load(std::size_t core, const Dpll &loop);

    /** Export one loop's state (arrays -> object). */
    void store(std::size_t core, Dpll &loop) const;

    /**
     * Array-form Dpll::observe(): identical control flow and
     * arithmetic, indexed into the SoA arrays.
     */
    ATM_HOT_PATH(engine_step)
    void observe(std::size_t core, double nowNs, int marginCounts) noexcept
    {
        if (dropout[core]) {
            if (!heldValid[core])
                return;
            marginCounts = heldMargin[core];
        } else {
            heldMargin[core] = marginCounts;
            heldValid[core] = 1;
        }
        if (marginCounts <= emergencyCounts) {
            if (nowNs - lastEmergencyNs[core] >= emergencyHoldoffNs) {
                periodPs[core] *= 1.0 + emergencyStretchFrac;
                lastEmergencyNs[core] = nowNs;
                ++emergencies[core];
                clampPeriod(core);
                ++adjustments;
            }
            lastUpdateNs[core] = nowNs;
            return;
        }
        if (nowNs - lastUpdateNs[core] < updateIntervalNs)
            return;
        lastUpdateNs[core] = nowNs;

        const int error = marginCounts - targetCounts;
        if (error < 0) {
            periodPs[core] *= 1.0 + slewDownPerCount * (-error);
            ++slewDowns[core];
            ++adjustments;
        } else if (error > 0) {
            const int step = std::min(error, slewUpCapCounts);
            periodPs[core] *= 1.0 - slewUpPerCount * step;
            ++slewUps[core];
            ++adjustments;
        }
        clampPeriod(core);
    }

    ATM_HOT_PATH(engine_step)
    void clampPeriod(std::size_t core) noexcept
    {
        periodPs[core] =
            std::clamp(periodPs[core], minPeriodPs, maxPeriodPs);
    }
};

} // namespace atmsim::dpll
