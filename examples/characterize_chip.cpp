/**
 * @file
 * Full chip characterization on a randomly manufactured chip: run the
 * paper's Fig. 6 procedure (idle -> uBench -> realistic workloads),
 * print the Table-I-style limits, run the test-time stress procedure,
 * and show the deployable per-core configuration.
 *
 *   ./characterize_chip [seed]
 */

#include <cstdlib>
#include <iostream>

#include "chip/chip.h"
#include "core/characterizer.h"
#include "core/stress_test.h"
#include "util/table.h"
#include "variation/chip_generator.h"

using namespace atmsim;

int
main(int argc, char **argv)
{
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
    std::cout << "Manufacturing a random chip (seed " << seed
              << ") and characterizing it...\n\n";

    chip::Chip chip(variation::generateChip("RND", seed));

    // The Fig. 6 methodology: simplest scenario to most complex, with
    // repeated runs per configuration.
    core::Characterizer characterizer(&chip);
    const core::LimitTable table = characterizer.characterizeChip();
    table.print(std::cout);

    // Idle-limit frequencies: the exposed inter-core speed variation.
    util::TextTable freqs;
    freqs.setHeader({"core", "preset", "idle-limit MHz",
                     "thread-worst MHz", "robustness spread"});
    for (int c = 0; c < chip.coreCount(); ++c) {
        const auto &limits = table.byIndex(c);
        freqs.addRow({limits.coreName,
                      std::to_string(
                          chip.core(c).silicon().presetSteps),
                      util::fmtInt(limits.idleLimitFreqMhz),
                      util::fmtInt(limits.worstLimitFreqMhz),
                      std::to_string(limits.rollbackSpread())});
    }
    std::cout << "\n";
    freqs.print(std::cout);

    // Test-time stress procedure: deployable configuration.
    core::StressTester tester(&chip);
    const core::DeployedConfig deployed = tester.deriveDeployedConfig();
    std::cout << "\nDeployable (stress-tested) configuration:\n"
              << "  fastest core  "
              << chip.core(deployed.fastestCore()).name() << " @ "
              << util::fmtInt(deployed.idleFreqMhz[static_cast<
                     std::size_t>(deployed.fastestCore())])
              << " MHz\n"
              << "  slowest core  "
              << chip.core(deployed.slowestCore()).name() << " @ "
              << util::fmtInt(deployed.idleFreqMhz[static_cast<
                     std::size_t>(deployed.slowestCore())])
              << " MHz\n"
              << "  differential  "
              << util::fmtInt(deployed.speedDifferentialMhz())
              << " MHz\n";

    const chip::ChipSteadyState env =
        tester.stressEnvironment(deployed.reductionPerCore);
    double max_temp = 0.0;
    for (util::Celsius t : env.coreTempC)
        max_temp = std::max(max_temp, t.value());
    std::cout << "  stress env    "
              << util::fmtInt(env.chipPowerW.value()) << " W, "
              << util::fmtInt(max_temp) << " degC die\n";
    return 0;
}
