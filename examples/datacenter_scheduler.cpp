/**
 * @file
 * QoS-managed scheduling on a fine-tuned ATM chip: place a critical
 * inference workload, derive the power budget its QoS target implies,
 * and throttle co-running background work only as much as necessary
 * (the Fig. 13 flow).
 *
 *   ./datacenter_scheduler [critical] [background] [qos%]
 *   e.g. ./datacenter_scheduler ferret raytrace 10
 */

#include <cstdlib>
#include <iostream>

#include "chip/chip.h"
#include "core/characterizer.h"
#include "core/manager.h"
#include "util/table.h"
#include "variation/reference_chips.h"
#include "workload/catalog.h"

using namespace atmsim;

int
main(int argc, char **argv)
{
    const std::string critical_name = argc > 1 ? argv[1] : "squeezenet";
    const std::string background_name = argc > 2 ? argv[2] : "lu_cb";
    const double qos_pct = argc > 3 ? std::atof(argv[3]) : 10.0;

    if (!workload::hasWorkload(critical_name)
        || !workload::hasWorkload(background_name)) {
        std::cerr << "unknown workload; available:\n";
        for (const auto &w : workload::allWorkloads())
            std::cerr << "  " << w.name << "\n";
        return 1;
    }

    chip::Chip chip(variation::makeReferenceChip(0));
    core::Characterizer characterizer(&chip);
    core::AtmManager manager(&chip, characterizer.characterizeChip());

    core::ScheduleRequest req;
    req.critical = &workload::findWorkload(critical_name);
    req.background = &workload::findWorkload(background_name);
    req.qosTarget = 1.0 + qos_pct / 100.0;

    std::cout << "Scheduling critical '" << critical_name
              << "' with background '" << background_name
              << "', QoS target +" << qos_pct << "% over the 4.2 GHz "
              << "static margin.\n\n";

    util::TextTable table;
    table.setHeader({"scenario", "critical core", "freq MHz", "perf",
                     "chip W", "budget W", "QoS"});
    for (core::Scenario scenario :
         {core::Scenario::StaticMargin,
          core::Scenario::DefaultAtmUnmanaged,
          core::Scenario::FineTunedUnmanaged, core::Scenario::ManagedMax,
          core::Scenario::ManagedBalanced}) {
        const core::ScenarioResult r = manager.evaluate(scenario, req);
        table.addRow({core::scenarioName(scenario),
                      chip.core(r.criticalCore).name(),
                      util::fmtInt(r.criticalFreqMhz),
                      util::fmtFixed(r.criticalPerf, 3),
                      util::fmtInt(r.chipPowerW),
                      r.powerBudgetW > 0.0
                          ? util::fmtInt(r.powerBudgetW)
                          : std::string("-"),
                      r.qosMet ? "met" : "missed"});
    }
    table.print(std::cout);

    // Show the balanced plan's throttling decisions.
    const core::ScenarioResult balanced =
        manager.evaluate(core::Scenario::ManagedBalanced, req);
    std::cout << "\nBalanced-mode background plan:\n";
    for (int c = 0; c < chip.coreCount(); ++c) {
        if (c == balanced.criticalCore) {
            std::cout << "  " << chip.core(c).name()
                      << ": critical workload (fastest deployed core)\n";
            continue;
        }
        const double cap = balanced.backgroundCapMhz[static_cast<
            std::size_t>(c)];
        std::cout << "  " << chip.core(c).name() << ": "
                  << background_name << " @ ";
        if (cap < 0.0)
            std::cout << "power-gated\n";
        // atmlint: allow(float-equality) -- 0.0 is the exact
        // "unthrottled" sentinel, never a computed frequency.
        else if (cap == 0.0)
            std::cout << "fine-tuned ATM (unthrottled)\n";
        else
            std::cout << util::fmtInt(cap) << " MHz p-state\n";
    }
    return 0;
}
