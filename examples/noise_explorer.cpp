/**
 * @file
 * Voltage-noise explorer: run the detailed engine with a di/dt-heavy
 * workload, record the core's supply voltage and clock frequency over
 * time, and draw both waveforms -- the first droop and the DPLL's
 * response are visible directly.
 *
 *   ./noise_explorer [workload] [reduction]
 *   e.g. ./noise_explorer x264 5
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "chip/chip.h"
#include "sim/sim_engine.h"
#include "sim/telemetry.h"
#include "util/ascii_plot.h"
#include "util/table.h"
#include "variation/reference_chips.h"
#include "workload/catalog.h"

using namespace atmsim;

int
main(int argc, char **argv)
{
    const std::string workload_name = argc > 1 ? argv[1] : "x264";
    const int reduction = argc > 2 ? std::atoi(argv[2]) : 0;
    if (!workload::hasWorkload(workload_name)) {
        std::cerr << "unknown workload '" << workload_name << "'\n";
        return 1;
    }

    chip::Chip chip(variation::makeReferenceChip(0));
    const auto &traits = workload::findWorkload(workload_name);
    chip.assignWorkload(0, &traits);
    chip.core(0).setCpmReduction(util::CpmSteps{reduction});

    std::cout << "Running " << workload_name << " on "
              << chip.core(0).name() << " at CPM reduction " << reduction
              << " for 4 us of detailed simulation...\n";

    sim::TelemetryRecorder telemetry(chip.coreCount());
    sim::SimConfig config;
    config.stopOnViolation = false;
    config.statsCadence = 5;
    sim::SimEngine engine(&chip, config);
    engine.addObserver(&telemetry);
    const sim::RunResult result = engine.run(4.0);

    std::vector<double> t_us, volts, freqs;
    for (const auto &sample : telemetry.series(0)) {
        t_us.push_back(sample.timeNs.value() / 1000.0);
        volts.push_back(sample.voltageV.value() * 1000.0); // mV
        freqs.push_back(sample.freqMhz.value());
    }

    util::AsciiPlot vplot(72, 14);
    vplot.addSeries("core voltage", t_us, volts, '*');
    vplot.setLabels("time (us)", "mV");
    vplot.print(std::cout);
    std::cout << "\n";

    util::AsciiPlot fplot(72, 14);
    fplot.addSeries("core frequency", t_us, freqs, '+');
    fplot.setLabels("time (us)", "MHz");
    fplot.print(std::cout);

    std::cout << "\nsliding-window average frequency (the off-chip "
                 "controller's input): "
              << util::fmtInt(telemetry.windowAvgFreqMhz(0, 2000.0))
              << " MHz over the last 2 us\n";
    std::cout << "run summary: mean frequency "
              << util::fmtInt(result.meanFreqMhz(0)) << " MHz, min core "
              << "voltage "
              << util::fmtInt(result.coreStats[0].minVoltageV * 1000.0)
              << " mV, DPLL emergencies "
              << result.coreStats[0].emergencies << ", violations "
              << result.violations.size() << "\n";
    if (!result.violations.empty()) {
        std::cout << "first violation at "
                  << util::fmtFixed(result.violations.front().timeNs
                                    / 1000.0, 2)
                  << " us ("
                  << sim::failureKindName(result.violations.front().kind)
                  << ") -- this CPM setting is past the core's limit "
                     "for this workload.\n";
    }
    return 0;
}
