/**
 * @file
 * Quickstart: build the paper-calibrated POWER7+ server, fine-tune
 * one core's ATM control loop through its CPMs, watch the frequency
 * climb, and see what happens when the tuning goes one step too far.
 *
 *   ./quickstart
 */

#include <iostream>

#include "chip/chip.h"
#include "core/characterizer.h"
#include "sim/sim_engine.h"
#include "util/table.h"
#include "variation/reference_chips.h"

using namespace atmsim;

int
main()
{
    // 1. Build one of the two calibrated reference chips.
    chip::Chip chip(variation::makeReferenceChip(0));
    std::cout << "Built chip " << chip.name() << " with "
              << chip.coreCount() << " cores.\n\n";

    chip::AtmCore &core = chip.core(0); // P0C0

    // 2. The factory default: uniform ~4.6 GHz idle ATM frequency.
    chip::ChipSteadyState st = chip.solveSteadyState();
    std::cout << core.name() << " at factory CPM preset:   "
              << util::fmtInt(st.coreFreqMhz[0].value()) << " MHz\n";

    // 3. Fine-tune: reduce the CPM inserted delay step by step. The
    //    control loop perceives more margin and overclocks.
    core::Characterizer characterizer(&chip);
    const int idle_limit = characterizer.idleLimit(0).limit();
    for (int k : {2, 5, idle_limit}) {
        core.setCpmReduction(util::CpmSteps{k});
        st = chip.solveSteadyState();
        std::cout << core.name() << " at " << k
                  << " steps of reduction: "
                  << util::fmtInt(st.coreFreqMhz[0].value()) << " MHz"
                  << (k == idle_limit ? "  <- idle limit" : "") << "\n";
    }

    // 4. One step past the limit: the canary no longer covers the
    //    real critical path, and a detailed engine run catches a
    //    timing violation.
    core.setCpmReduction(util::CpmSteps{idle_limit + 2});
    sim::SimConfig config;
    config.runNoisePs = 1.1; // a hostile run
    sim::SimEngine engine(&chip, config);
    const sim::RunResult result = engine.run(3.0);
    std::cout << "\nAt " << idle_limit + 2 << " steps: ";
    if (result.failed()) {
        std::cout << "timing violation after "
                  << util::fmtFixed(result.violations.front().timeNs
                                    / 1000.0, 2)
                  << " us, manifested as "
                  << sim::failureKindName(result.violations.front().kind)
                  << ".\n";
    } else {
        std::cout << "survived this run (failures are probabilistic; "
                     "repeat runs would catch it).\n";
    }

    // 5. Safe deployment: thread-worst limits survive even the
    //    voltage-virus stress test.
    core.setCpmReduction(util::CpmSteps{0});
    std::cout << "\nNext steps: examples/characterize_chip for the "
                 "full Table-I procedure,\nexamples/datacenter_"
                 "scheduler for QoS-managed scheduling.\n";
    return 0;
}
