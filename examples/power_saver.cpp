/**
 * @file
 * Power-saver mode: the other use of reclaimed timing margin. The
 * off-chip voltage controller lowers chip-wide V_dd until the slowest
 * core just sustains a frequency target, converting ATM's margin into
 * power savings instead of frequency. Fine-tuned CPM configurations
 * raise the slowest core, unlocking deeper undervolting at the same
 * target.
 *
 *   ./power_saver [target_mhz]
 */

#include <cstdlib>
#include <iostream>

#include "chip/chip.h"
#include "core/characterizer.h"
#include "core/governor.h"
#include "core/undervolt.h"
#include "util/table.h"
#include "variation/reference_chips.h"
#include "workload/catalog.h"

using namespace atmsim;

int
main(int argc, char **argv)
{
    const double target = argc > 1 ? std::atof(argv[1]) : 4200.0;

    chip::Chip chip(variation::makeReferenceChip(0));
    core::Characterizer characterizer(&chip);
    core::Governor governor(&chip, characterizer.characterizeChip());

    // A realistic mixed load.
    const char *mix[] = {"gcc", "blackscholes", "xz", "leela",
                         "swaptions", "namd", "raytrace", "freqmine"};
    for (int c = 0; c < chip.coreCount(); ++c)
        chip.assignWorkload(c, &workload::findWorkload(mix[c]));

    std::cout << "Undervolting to a " << target
              << " MHz slowest-core target under a mixed SPEC/PARSEC "
                 "load.\n\n";

    util::TextTable table;
    table.setHeader({"CPM policy", "Vdd (V)", "slowest MHz", "chip W",
                     "saved"});
    for (core::GovernorPolicy policy :
         {core::GovernorPolicy::DefaultAtm,
          core::GovernorPolicy::FineTuned}) {
        governor.apply(policy);
        core::UndervoltController controller(&chip, target);
        const core::UndervoltResult result = controller.solve();
        table.addRow({core::governorPolicyName(policy),
                      util::fmtFixed(result.vrmSetpointV, 3),
                      util::fmtInt(result.slowestCoreMhz),
                      util::fmtInt(result.undervoltPowerW),
                      util::fmtPercent(result.savingFrac())});
        controller.restore();
    }
    table.print(std::cout);

    std::cout << "\nthe paper studies the overclocking configuration; "
                 "this is the same reclaimed margin converted to power "
                 "(Sec. II / Fig. 3's off-chip voltage control), where "
                 "the chip's worst core limits the saving -- which is "
                 "why per-core fine-tuning helps here too.\n";
    return 0;
}
